#include "rabin/rabin_tree_automaton.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "games/rabin_game.hpp"

namespace slat::rabin {

RabinTreeAutomaton::RabinTreeAutomaton(Alphabet alphabet, int branching, int num_states,
                                       State initial)
    : alphabet_(std::move(alphabet)),
      branching_(branching),
      num_states_(num_states),
      initial_(initial) {
  SLAT_ASSERT(branching >= 1);
  SLAT_ASSERT(num_states >= 1);
  SLAT_ASSERT(initial >= 0 && initial < num_states);
  delta_.assign(num_states, std::vector<std::vector<Tuple>>(alphabet_.size()));
}

void RabinTreeAutomaton::add_transition(State q, Sym s, Tuple tuple) {
  SLAT_ASSERT(q >= 0 && q < num_states_);
  SLAT_ASSERT(s >= 0 && s < alphabet_.size());
  SLAT_ASSERT(static_cast<int>(tuple.size()) == branching_);
  for (State t : tuple) SLAT_ASSERT(t >= 0 && t < num_states_);
  auto& list = delta_[q][s];
  if (std::find(list.begin(), list.end(), tuple) == list.end()) {
    list.push_back(std::move(tuple));
  }
}

const std::vector<Tuple>& RabinTreeAutomaton::transitions(State q, Sym s) const {
  SLAT_ASSERT(q >= 0 && q < num_states_);
  SLAT_ASSERT(s >= 0 && s < alphabet_.size());
  return delta_[q][s];
}

void RabinTreeAutomaton::add_pair(const std::vector<State>& green,
                                  const std::vector<State>& red) {
  RabinPair pair;
  pair.green.assign(num_states_, false);
  pair.red.assign(num_states_, false);
  for (State q : green) {
    SLAT_ASSERT(q >= 0 && q < num_states_);
    pair.green[q] = true;
  }
  for (State q : red) {
    SLAT_ASSERT(q >= 0 && q < num_states_);
    pair.red[q] = true;
  }
  pairs_.push_back(std::move(pair));
}

void RabinTreeAutomaton::set_trivial_acceptance() {
  pairs_.clear();
  std::vector<State> all(num_states_);
  for (State q = 0; q < num_states_; ++q) all[q] = q;
  add_pair(all, {});
}

namespace {

using games::RabinGame;
using games::RabinMarks;

RabinMarks marks_of(const RabinTreeAutomaton& automaton, State q) {
  RabinMarks marks;
  for (int i = 0; i < automaton.num_pairs(); ++i) {
    if (automaton.pair(i).green[q]) marks.green |= 1u << i;
    if (automaton.pair(i).red[q]) marks.red |= 1u << i;
  }
  return marks;
}

// Marks making every play through the node losing for player 0 (red for
// every pair; with zero pairs any infinite play already loses).
RabinMarks losing_marks(const RabinTreeAutomaton& automaton) {
  RabinMarks marks;
  for (int i = 0; i < automaton.num_pairs(); ++i) marks.red |= 1u << i;
  return marks;
}

// Builder for the emptiness/membership/extension games. The "free" region
// hosts one Automaton node per state (Automaton picks label + transition);
// the "product" region constrains labels by a tree. Pathfinder owns the
// intermediate choice nodes and picks the direction.
class GameBuilder {
 public:
  explicit GameBuilder(const RabinTreeAutomaton& automaton) : automaton_(automaton) {
    game_.num_pairs = automaton.num_pairs();
    sink_ = game_.add_node(0, losing_marks(automaton));
    game_.add_edge(sink_, sink_);
  }

  // The (symbol, tuple) behind a Pathfinder choice node.
  struct ChoiceInfo {
    Sym symbol;
    Tuple tuple;
  };

  int free_node(State q) {
    auto it = free_.find(q);
    if (it != free_.end()) return it->second;
    const int id = game_.add_node(0, marks_of(automaton_, q));
    free_.emplace(q, id);
    bool any = false;
    for (Sym s = 0; s < automaton_.alphabet().size(); ++s) {
      for (const Tuple& tuple : automaton_.transitions(q, s)) {
        const int choice = game_.add_node(1, RabinMarks{});
        choice_info_.emplace(choice, ChoiceInfo{s, tuple});
        game_.add_edge(id, choice);
        any = true;
        for (State succ : tuple) game_.add_edge(choice, free_node(succ));
      }
    }
    if (!any) game_.add_edge(id, sink_);
    return id;
  }

  // Product node for (tree node v, state q); leaves of the tree fall
  // through to the free region (the extension is the Automaton's choice).
  int product_node(const KTree& tree, int v, State q) {
    const auto key = std::make_pair(v, q);
    auto it = product_.find(key);
    if (it != product_.end()) return it->second;
    const int id = game_.add_node(0, marks_of(automaton_, q));
    product_.emplace(key, id);
    bool any = false;
    if (tree.is_leaf(v)) {
      // The leaf itself belongs to the prefix: its LABEL is fixed (the
      // paper's concatenation keeps the leaf's label and grafts subtrees
      // below it); only the subtrees are free, so successors jump to the
      // free region.
      const Sym s = tree.label(v);
      for (const Tuple& tuple : automaton_.transitions(q, s)) {
        const int choice = game_.add_node(1, RabinMarks{});
        choice_info_.emplace(choice, ChoiceInfo{s, tuple});
        game_.add_edge(id, choice);
        any = true;
        for (State succ : tuple) game_.add_edge(choice, free_node(succ));
      }
    } else {
      const Sym s = tree.label(v);
      const auto& children = tree.children(v);
      SLAT_ASSERT_MSG(static_cast<int>(children.size()) == automaton_.branching(),
                      "non-leaf tree nodes must have exactly k children");
      for (const Tuple& tuple : automaton_.transitions(q, s)) {
        const int choice = game_.add_node(1, RabinMarks{});
        choice_info_.emplace(choice, ChoiceInfo{s, tuple});
        game_.add_edge(id, choice);
        any = true;
        for (int dir = 0; dir < automaton_.branching(); ++dir) {
          game_.add_edge(choice, product_node(tree, children[dir], tuple[dir]));
        }
      }
    }
    if (!any) game_.add_edge(id, sink_);
    return id;
  }

  RabinGame& game() { return game_; }
  const ChoiceInfo& info(int choice_node) const { return choice_info_.at(choice_node); }

 private:
  const RabinTreeAutomaton& automaton_;
  RabinGame game_;
  int sink_ = -1;
  std::map<State, int> free_;
  std::map<std::pair<int, State>, int> product_;
  std::map<int, ChoiceInfo> choice_info_;
};

}  // namespace

std::vector<bool> RabinTreeAutomaton::states_with_nonempty_language() const {
  // Emptiness solves a Rabin game over the whole automaton; is_empty, rfcl,
  // and witness extraction all re-ask it for the same automata, so the
  // answer is memoized by content digest.
  static core::MemoCache<std::vector<bool>>& cache =
      *new core::MemoCache<std::vector<bool>>("rabin.nonempty_states");
  return cache.get_or_compute(
      core::DigestBuilder().add_string("nonempty").add_digest(fingerprint(*this)).digest(),
      [&] {
        GameBuilder builder(*this);
        std::vector<int> node_of(num_states_);
        for (State q = 0; q < num_states_; ++q) node_of[q] = builder.free_node(q);
        const auto solution = games::solve_rabin(builder.game());
        std::vector<bool> nonempty(num_states_, false);
        for (State q = 0; q < num_states_; ++q) {
          nonempty[q] = solution.winner[node_of[q]] == 0;
        }
        return nonempty;
      });
}

bool RabinTreeAutomaton::is_empty() const {
  return !states_with_nonempty_language()[initial_];
}

bool RabinTreeAutomaton::accepts(const KTree& tree) const {
  SLAT_ASSERT_MSG(tree.is_total(), "accepts() expects a total tree");
  return accepts_some_extension(tree);
}

bool RabinTreeAutomaton::accepts_some_extension(const KTree& prefix) const {
  // Symbols are compared by index; only the alphabet sizes must agree (the
  // tree may use different display names for the same symbol indices).
  SLAT_ASSERT(prefix.alphabet().size() == alphabet_.size());
  GameBuilder builder(*this);
  const int entry = builder.product_node(prefix, prefix.root(), initial_);
  const auto solution = games::solve_rabin(builder.game());
  return solution.winner[entry] == 0;
}

std::optional<KTree> RabinTreeAutomaton::find_accepted_tree() const {
  GameBuilder builder(*this);
  const int entry_rabin = builder.free_node(initial_);
  games::RabinSolution solution = games::solve_rabin(builder.game());
  if (solution.winner[entry_rabin] != 0) return std::nullopt;

  // Walk the IAR parity game under player 0's positional strategy; the
  // visited Automaton parity nodes become the nodes of the witness tree.
  const auto& parity = solution.expansion.parity;
  const auto& strategy = solution.parity_solution.strategy;
  const int start = solution.expansion.initial_node[entry_rabin];
  SLAT_ASSERT(start >= 0);

  KTree tree(alphabet_, 1, 0);
  std::map<int, int> tree_node_of{{start, 0}};
  std::vector<int> worklist{start};
  while (!worklist.empty()) {
    const int parity_node = worklist.back();
    worklist.pop_back();
    const int tree_node = tree_node_of.at(parity_node);
    SLAT_ASSERT(parity.owner[parity_node] == 0);
    const int choice = strategy[parity_node];
    SLAT_ASSERT_MSG(choice != -1, "winning nodes must carry a strategy");
    const auto& info = builder.info(solution.expansion.rabin_node[choice]);
    tree.set_label(tree_node, info.symbol);
    SLAT_ASSERT(static_cast<int>(parity.successors[choice].size()) == branching_);
    for (int dir = 0; dir < branching_; ++dir) {
      const int succ = parity.successors[choice][dir];
      auto [it, inserted] = tree_node_of.emplace(succ, tree.num_nodes());
      if (inserted) {
        const int fresh = tree.add_node(0);
        SLAT_ASSERT(fresh == it->second);
        worklist.push_back(succ);
      }
      tree.add_child(tree_node, it->second);
    }
  }
  SLAT_ASSERT(tree.is_total());
  return tree;
}

std::string RabinTreeAutomaton::to_string() const {
  std::ostringstream out;
  out << "RabinTreeAutomaton: " << num_states_ << " states, k=" << branching_
      << ", initial " << initial_ << ", " << num_pairs() << " pairs\n";
  for (State q = 0; q < num_states_; ++q) {
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      for (const Tuple& tuple : delta_[q][s]) {
        out << "  " << q << " --" << alphabet_.name(s) << "--> (";
        for (std::size_t i = 0; i < tuple.size(); ++i) {
          if (i > 0) out << ", ";
          out << tuple[i];
        }
        out << ")\n";
      }
    }
  }
  return out.str();
}

core::Digest fingerprint(const RabinTreeAutomaton& automaton) {
  core::DigestBuilder b;
  b.add_string("rabin.tree");
  const Alphabet& alphabet = automaton.alphabet();
  b.add_int(alphabet.size());
  for (Sym s = 0; s < alphabet.size(); ++s) b.add_string(alphabet.name(s));
  b.add_int(automaton.branching())
      .add_int(automaton.num_states())
      .add_int(automaton.initial());
  for (State q = 0; q < automaton.num_states(); ++q) {
    for (Sym s = 0; s < alphabet.size(); ++s) {
      const auto& tuples = automaton.transitions(q, s);
      b.add(tuples.size());
      for (const Tuple& tuple : tuples) b.add_ints(tuple);
    }
  }
  b.add_int(automaton.num_pairs());
  for (int i = 0; i < automaton.num_pairs(); ++i) {
    b.add_bools(automaton.pair(i).green).add_bools(automaton.pair(i).red);
  }
  return b.digest();
}

namespace {

RabinTreeAutomaton rfcl_uncached(const RabinTreeAutomaton& automaton) {
  const auto nonempty = automaton.states_with_nonempty_language();
  if (!nonempty[automaton.initial()]) return automaton;  // paper: rfcl.B = B
  std::vector<State> remap(automaton.num_states(), -1);
  int next_id = 0;
  for (State q = 0; q < automaton.num_states(); ++q) {
    if (nonempty[q]) remap[q] = next_id++;
  }
  RabinTreeAutomaton out(automaton.alphabet(), automaton.branching(), next_id,
                         remap[automaton.initial()]);
  for (State q = 0; q < automaton.num_states(); ++q) {
    if (!nonempty[q]) continue;
    for (Sym s = 0; s < automaton.alphabet().size(); ++s) {
      for (const Tuple& tuple : automaton.transitions(q, s)) {
        Tuple mapped(tuple.size());
        bool keep = true;
        for (std::size_t i = 0; i < tuple.size(); ++i) {
          if (!nonempty[tuple[i]]) {
            keep = false;
            break;
          }
          mapped[i] = remap[tuple[i]];
        }
        if (keep) out.add_transition(remap[q], s, std::move(mapped));
      }
    }
  }
  out.set_trivial_acceptance();
  return out;
}

}  // namespace

RabinTreeAutomaton rfcl(const RabinTreeAutomaton& automaton) {
  // The closure solves one Rabin game per input automaton, and the same
  // automata recur across decompose/classify sweeps — a prime memo target.
  static core::MemoCache<RabinTreeAutomaton>& cache =
      *new core::MemoCache<RabinTreeAutomaton>("rabin.rfcl");
  return cache.get_or_compute(
      core::DigestBuilder().add_string("rfcl").add_digest(fingerprint(automaton)).digest(),
      [&] { return rfcl_uncached(automaton); });
}

// ---------------------------------------------------------------------------
// Escaping a safety (limit-closed) tree language
// ---------------------------------------------------------------------------

namespace {

// For a trivial-acceptance automaton, membership is run existence, and run
// existence on a total tree is limit-determined (König): z ∈ L iff every
// finite prefix of z carries a partial run. "Some extension of x escapes L"
// therefore reduces to finite reasoning:
//
//   R(t) = { q : a partial run of B(q) exists on the finite tree t }
//
// is computable bottom-up, the family F = { R(t) : t finite } is a finite
// fixpoint, and an extension of x escapes iff the leaves of x can be
// assigned sets from F such that the greatest fixpoint of the run-existence
// equations over x's graph excludes the initial state.

using StateSet = std::vector<bool>;

StateSet combine(const RabinTreeAutomaton& automaton, Sym s,
                 const std::vector<const StateSet*>& child_sets) {
  StateSet out(automaton.num_states(), false);
  for (State q = 0; q < automaton.num_states(); ++q) {
    for (const Tuple& tuple : automaton.transitions(q, s)) {
      bool ok = true;
      for (int j = 0; j < automaton.branching() && ok; ++j) {
        ok = (*child_sets[j])[tuple[j]];
      }
      if (ok) {
        out[q] = true;
        break;
      }
    }
  }
  return out;
}

// The family F of achievable R-sets, as a deduplicated list.
std::vector<StateSet> achievable_run_sets(const RabinTreeAutomaton& automaton) {
  std::set<StateSet> family;
  family.insert(StateSet(automaton.num_states(), true));  // single leaf: R = Q
  bool grew = true;
  while (grew) {
    grew = false;
    const std::vector<StateSet> snapshot(family.begin(), family.end());
    const int m = static_cast<int>(snapshot.size());
    // All k-tuples over the current family, for every symbol.
    std::vector<int> index(automaton.branching(), 0);
    while (true) {
      std::vector<const StateSet*> child_sets;
      child_sets.reserve(automaton.branching());
      for (int j = 0; j < automaton.branching(); ++j) {
        child_sets.push_back(&snapshot[index[j]]);
      }
      for (Sym s = 0; s < automaton.alphabet().size(); ++s) {
        if (family.insert(combine(automaton, s, child_sets)).second) grew = true;
      }
      int pos = 0;
      while (pos < automaton.branching() && ++index[pos] == m) index[pos++] = 0;
      if (pos == automaton.branching()) break;
    }
  }
  return {family.begin(), family.end()};
}

// Minimal elements of the family under pointwise ⊆ (smaller leaf sets can
// only shrink the fixpoint, so only minimal assignments matter).
std::vector<StateSet> minimal_sets(std::vector<StateSet> family) {
  std::vector<StateSet> out;
  for (const StateSet& candidate : family) {
    bool minimal = true;
    for (const StateSet& other : family) {
      if (other == candidate) continue;
      bool subset = true;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        if (other[i] && !candidate[i]) {
          subset = false;
          break;
        }
      }
      if (subset) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(candidate);
  }
  return out;
}

// Greatest fixpoint of run existence over the prefix's graph, with the given
// leaf assignment. Returns whether the initial state survives at the root.
bool run_exists_with_leaves(const RabinTreeAutomaton& automaton, const KTree& prefix,
                            const std::map<int, const StateSet*>& leaf_sets) {
  const int n = prefix.num_nodes();
  std::vector<StateSet> r(n, StateSet(automaton.num_states(), true));
  for (const auto& [leaf, set] : leaf_sets) r[leaf] = *set;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 0; v < n; ++v) {
      if (prefix.is_leaf(v)) continue;
      std::vector<const StateSet*> child_sets;
      for (int c : prefix.children(v)) child_sets.push_back(&r[c]);
      StateSet next = combine(automaton, prefix.label(v), child_sets);
      if (next != r[v]) {
        r[v] = std::move(next);
        changed = true;
      }
    }
  }
  return r[prefix.root()][automaton.initial()];
}

}  // namespace

bool some_extension_escapes(const RabinTreeAutomaton& safety_automaton,
                            const KTree& prefix) {
  // Precondition: trivial acceptance (the rfcl shape), so that membership is
  // run existence.
  SLAT_ASSERT_MSG(safety_automaton.num_pairs() == 1,
                  "escape analysis requires a trivial-acceptance automaton");
  for (State q = 0; q < safety_automaton.num_states(); ++q) {
    SLAT_ASSERT(safety_automaton.pair(0).green[q]);
    SLAT_ASSERT(!safety_automaton.pair(0).red[q]);
  }
  const auto reach = prefix.reachable();
  std::vector<int> leaves;
  for (int v = 0; v < prefix.num_nodes(); ++v) {
    if (reach[v] && prefix.is_leaf(v)) leaves.push_back(v);
  }
  const auto minimal = minimal_sets(achievable_run_sets(safety_automaton));
  SLAT_ASSERT(!minimal.empty());
  // A prefix leaf keeps its LABEL: the achievable R-sets at a leaf labeled
  // σ are combine(σ, S⃗) over glue subtrees with R-sets S⃗ ∈ F — and by
  // monotonicity only minimal S⃗ matter.
  std::vector<std::vector<StateSet>> per_symbol(safety_automaton.alphabet().size());
  {
    const int k = safety_automaton.branching();
    const int m = static_cast<int>(minimal.size());
    std::vector<int> index(k, 0);
    std::vector<std::set<StateSet>> sets(safety_automaton.alphabet().size());
    while (true) {
      std::vector<const StateSet*> child_sets;
      child_sets.reserve(k);
      for (int j = 0; j < k; ++j) child_sets.push_back(&minimal[index[j]]);
      for (Sym s = 0; s < safety_automaton.alphabet().size(); ++s) {
        sets[s].insert(combine(safety_automaton, s, child_sets));
      }
      int pos = 0;
      while (pos < k && ++index[pos] == m) index[pos++] = 0;
      if (pos == k) break;
    }
    for (Sym s = 0; s < safety_automaton.alphabet().size(); ++s) {
      per_symbol[s] = minimal_sets({sets[s].begin(), sets[s].end()});
    }
  }

  // Try every assignment of per-label minimal sets to the leaves.
  std::vector<int> choice(leaves.size(), 0);
  const auto family_of = [&](int leaf) -> const std::vector<StateSet>& {
    return per_symbol[prefix.label(leaf)];
  };
  while (true) {
    std::map<int, const StateSet*> leaf_sets;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      leaf_sets[leaves[i]] = &family_of(leaves[i])[choice[i]];
    }
    if (!run_exists_with_leaves(safety_automaton, prefix, leaf_sets)) return true;
    std::size_t pos = 0;
    while (pos < leaves.size() &&
           ++choice[pos] == static_cast<int>(family_of(leaves[pos]).size())) {
      choice[pos++] = 0;
    }
    if (pos == leaves.size()) break;
  }
  return false;
}

bool RabinDecomposition::liveness_contains(const KTree& tree) const {
  return original.accepts(tree) || !safety.accepts(tree);
}

bool RabinDecomposition::liveness_extendable(const KTree& prefix) const {
  if (original.accepts_some_extension(prefix)) return true;
  // When L(B) = ∅ the closure is empty too (rfcl leaves B unchanged, so it
  // may lack the trivial-acceptance shape); every extension escapes it.
  if (safety.num_pairs() != 1 || safety.is_empty()) return true;
  return some_extension_escapes(safety, prefix);
}

RabinDecomposition decompose(const RabinTreeAutomaton& automaton) {
  return RabinDecomposition{rfcl(automaton), automaton};
}

trees::TreeProperty as_tree_property(const RabinTreeAutomaton& automaton,
                                     std::string name) {
  return trees::TreeProperty{
      std::move(name),
      [&automaton](const KTree& t) { return automaton.accepts(t); },
      [&automaton](const KTree& t) { return automaton.accepts_some_extension(t); }};
}

bool in_rncl_bounded(const RabinTreeAutomaton& automaton, const KTree& tree,
                     int depth) {
  return trees::in_ncl(as_tree_property(automaton, "rncl"), tree, depth);
}

}  // namespace slat::rabin
