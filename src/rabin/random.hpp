// Random Rabin tree automata for property-based tests and benches.
#pragma once

#include <random>

#include "rabin/rabin_tree_automaton.hpp"

namespace slat::rabin {

struct RandomRabinConfig {
  int num_states = 3;
  int alphabet_size = 2;
  int branching = 2;
  int num_pairs = 1;
  /// Expected number of transition tuples per (state, symbol).
  double tuples_per_slot = 1.0;
  double green_probability = 0.4;
  double red_probability = 0.25;
};

RabinTreeAutomaton random_rabin(const RandomRabinConfig& config, std::mt19937& rng);

}  // namespace slat::rabin
