// A small library of hand-built Rabin tree automata over binary branching
// (k = 2) and the binary alphabet {a, b}, used by tests, benches and the
// branching-time examples. Each automaton's language is documented; tests
// cross-check them against independent oracles (CTL model checking or the
// graph predicates of trees/rem_branching.hpp).
#pragma once

#include "rabin/rabin_tree_automaton.hpp"

namespace slat::rabin {

/// L = { the constant a-tree }: only label a, trivial acceptance.
RabinTreeAutomaton aut_const_a();

/// L = all binary {a,b}-trees (the k=2 version of A_tot): trivial automaton.
RabinTreeAutomaton aut_all_trees();

/// L = ∅ (no transitions).
RabinTreeAutomaton aut_empty();

/// L = trees whose root is labeled a (the k=2 analogue of q1).
RabinTreeAutomaton aut_root_a();

/// L = trees where EVERY path eventually hits a b-node (AF b).
RabinTreeAutomaton aut_af_b();

/// L = trees where every path sees b infinitely often (A GF b).
RabinTreeAutomaton aut_agf_b();

/// L = trees with SOME path that is eventually all-b (E FG b).
RabinTreeAutomaton aut_efg_b();

/// L = trees where every path is eventually all-b (A FG b) — genuinely
/// uses the Rabin pair: green = "just read b" must recur while red =
/// "just read a" must die out, on every path.
RabinTreeAutomaton aut_afg_b();

}  // namespace slat::rabin
