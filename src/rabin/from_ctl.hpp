// CTL → nondeterministic Büchi tree automata (emitted as one-pair Rabin
// automata), over k-ary trees.
//
// Construction (standard, here made concrete):
//   1. CTL in negation normal form becomes a one-state-per-subformula
//      ALTERNATING Büchi tree automaton: transitions are positive boolean
//      formulas over (direction, subformula) atoms; least-fixpoint
//      subformulas (EU/AU) are rejecting, greatest-fixpoint ones (EG/AG)
//      accepting — an infinite run branch eventually loops in exactly one
//      temporal subformula, and it must be a greatest fixpoint.
//   2. The Miyano–Hayashi breakpoint construction removes alternation:
//      nondeterministic states are pairs (S, O) of subformula sets, O
//      tracking the rejecting states that still owe an acceptance visit;
//      per path, O must empty infinitely often — a Büchi condition, i.e.
//      the Rabin pair (O = ∅ states, ∅).
//
// The output plugs into everything in this module (membership games, rfcl,
// Theorem 9 decomposition), which turns the §4.3 table from hand-built
// automata into machine-generated ones. Exponential in the formula, as CTL
// → NBT must be; fine for the example-sized formulas here.
#pragma once

#include "rabin/rabin_tree_automaton.hpp"
#include "trees/ctl.hpp"

namespace slat::rabin {

/// The Büchi tree automaton (as a one-pair Rabin automaton) recognizing
/// { total `branching`-ary trees t : t ⊨ f }.
RabinTreeAutomaton from_ctl(trees::CtlArena& arena, trees::CtlId f, int branching);

/// Statistics for the ablation bench.
struct CtlTranslationStats {
  int alternating_states = 0;  ///< NNF subformulas
  int nondeterministic_states = 0;
  int transitions = 0;  ///< total tuple count
};

RabinTreeAutomaton from_ctl(trees::CtlArena& arena, trees::CtlId f, int branching,
                            CtlTranslationStats* stats);

}  // namespace slat::rabin
