#include "rabin/from_ctl.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "common/assert.hpp"
#include "core/state_set.hpp"

namespace slat::rabin {

namespace {

using trees::CtlArena;
using trees::CtlId;
using trees::CtlNode;
using trees::CtlOp;

// One atom of an alternating transition: send subformula `state` into
// direction `dir`.
using Atom = std::pair<int, CtlId>;
// A minimal satisfying assignment of a transition formula.
using Assignment = std::set<Atom>;

// The minimal satisfying assignments of δ(q, σ) for the one-state-per-
// subformula alternating automaton, computed directly from the formula
// structure. Least-fixpoint self-references (EU/AU) point back at q itself.
std::vector<Assignment> assignments(const CtlArena& arena, CtlId q, words::Sym symbol,
                                    int branching) {
  const CtlNode& n = arena.node(q);
  const auto cross = [](const std::vector<Assignment>& lhs,
                        const std::vector<Assignment>& rhs) {
    std::vector<Assignment> out;
    for (const Assignment& a : lhs) {
      for (const Assignment& b : rhs) {
        Assignment merged = a;
        merged.insert(b.begin(), b.end());
        out.push_back(std::move(merged));
      }
    }
    return out;
  };
  const auto unite = [](std::vector<Assignment> lhs, const std::vector<Assignment>& rhs) {
    lhs.insert(lhs.end(), rhs.begin(), rhs.end());
    return lhs;
  };
  // "Send φ to some direction" / "send φ to every direction".
  const auto some_dir = [&](CtlId f) {
    std::vector<Assignment> out;
    for (int j = 0; j < branching; ++j) out.push_back({{j, f}});
    return out;
  };
  const auto all_dirs = [&](CtlId f) {
    Assignment everywhere;
    for (int j = 0; j < branching; ++j) everywhere.insert({j, f});
    return std::vector<Assignment>{everywhere};
  };

  switch (n.op) {
    case CtlOp::kTrue:
      return {{}};
    case CtlOp::kFalse:
      return {};
    case CtlOp::kAtom:
      return n.atom == symbol ? std::vector<Assignment>{{}} : std::vector<Assignment>{};
    case CtlOp::kNot:
      SLAT_ASSERT(arena.node(n.lhs).op == CtlOp::kAtom);
      return arena.node(n.lhs).atom != symbol ? std::vector<Assignment>{{}}
                                              : std::vector<Assignment>{};
    case CtlOp::kAnd:
      return cross(assignments(arena, n.lhs, symbol, branching),
                   assignments(arena, n.rhs, symbol, branching));
    case CtlOp::kOr:
      return unite(assignments(arena, n.lhs, symbol, branching),
                   assignments(arena, n.rhs, symbol, branching));
    case CtlOp::kEX:
      return some_dir(n.lhs);
    case CtlOp::kAX:
      return all_dirs(n.lhs);
    case CtlOp::kEU:
      // ψ ∨ (φ ∧ ◇q).
      return unite(assignments(arena, n.rhs, symbol, branching),
                   cross(assignments(arena, n.lhs, symbol, branching), some_dir(q)));
    case CtlOp::kAU:
      return unite(assignments(arena, n.rhs, symbol, branching),
                   cross(assignments(arena, n.lhs, symbol, branching), all_dirs(q)));
    case CtlOp::kER:
      // ψ ∧ (φ ∨ ◇q).
      return cross(assignments(arena, n.rhs, symbol, branching),
                   unite(assignments(arena, n.lhs, symbol, branching), some_dir(q)));
    case CtlOp::kAR:
      return cross(assignments(arena, n.rhs, symbol, branching),
                   unite(assignments(arena, n.lhs, symbol, branching), all_dirs(q)));
    case CtlOp::kImplies:
    case CtlOp::kEF:
    case CtlOp::kAF:
    case CtlOp::kEG:
    case CtlOp::kAG:
      SLAT_ASSERT_MSG(false, "translation input must be in NNF");
  }
  return {};
}

// Breakpoint state of the Miyano–Hayashi construction.
struct MhState {
  std::set<CtlId> all;    ///< S: pending subformula obligations
  std::set<CtlId> owing;  ///< O ⊆ S: rejecting states owing an F-visit

  std::uint64_t hash() const {
    std::uint64_t h = core::kHashSeed;
    for (CtlId q : all) h = core::hash_combine(h, static_cast<std::uint64_t>(q));
    h = core::hash_combine(h, 0x9e3779b97f4a7c15ull);  // domain-separate S from O
    for (CtlId q : owing) h = core::hash_combine(h, static_cast<std::uint64_t>(q));
    return h;
  }

  friend bool operator==(const MhState&, const MhState&) = default;
};

bool is_rejecting(const CtlArena& arena, CtlId q) {
  const CtlOp op = arena.node(q).op;
  return op == CtlOp::kEU || op == CtlOp::kAU;  // least fixpoints must die out
}

}  // namespace

RabinTreeAutomaton from_ctl(trees::CtlArena& arena, trees::CtlId f, int branching) {
  return from_ctl(arena, f, branching, nullptr);
}

RabinTreeAutomaton from_ctl(trees::CtlArena& arena, trees::CtlId f, int branching,
                            CtlTranslationStats* stats) {
  SLAT_ASSERT(branching >= 1);
  const CtlId root = arena.nnf(f);

  // Explore reachable MH states, building the transition table in parallel.
  // Hashed interning; ids follow discovery order exactly as the seed's
  // ordered map did.
  core::InternTable<MhState> intern;
  std::vector<std::tuple<State, words::Sym, Tuple>> transitions;
  const auto intern_state = [&](MhState state) { return intern.intern(std::move(state)); };

  MhState initial;
  initial.all.insert(root);
  if (is_rejecting(arena, root)) initial.owing.insert(root);
  const State initial_id = intern_state(initial);

  std::set<CtlId> alternating_states;  // for stats

  for (int work = 0; work < intern.size(); ++work) {
    const MhState current = intern.key(work);  // copy: the table grows below
    const State current_id = work;
    for (CtlId q : current.all) alternating_states.insert(q);

    for (words::Sym symbol = 0; symbol < arena.alphabet().size(); ++symbol) {
      // Per pending obligation, the list of ways to discharge it.
      std::vector<CtlId> pending(current.all.begin(), current.all.end());
      std::vector<std::vector<Assignment>> options;
      bool dead = false;
      for (CtlId q : pending) {
        options.push_back(assignments(arena, q, symbol, branching));
        if (options.back().empty()) {
          dead = true;
          break;
        }
      }
      if (dead) continue;

      // Every combination of choices yields one nondeterministic transition.
      std::vector<std::size_t> choice(pending.size(), 0);
      while (true) {
        // Combined atoms, split per direction; owing tracked separately.
        std::vector<std::set<CtlId>> all_j(branching), owing_j(branching);
        for (std::size_t i = 0; i < pending.size(); ++i) {
          const Assignment& assignment = options[i][choice[i]];
          const bool from_owing = current.owing.count(pending[i]) != 0;
          for (const auto& [dir, succ] : assignment) {
            all_j[dir].insert(succ);
            if (!current.owing.empty() && from_owing && is_rejecting(arena, succ)) {
              owing_j[dir].insert(succ);
            }
          }
        }
        Tuple tuple(branching);
        for (int j = 0; j < branching; ++j) {
          MhState next;
          next.all = std::move(all_j[j]);
          if (current.owing.empty()) {
            // Breakpoint: refill with every rejecting member.
            for (CtlId q : next.all) {
              if (is_rejecting(arena, q)) next.owing.insert(q);
            }
          } else {
            next.owing = std::move(owing_j[j]);
          }
          tuple[j] = intern_state(next);
        }
        transitions.emplace_back(current_id, symbol, std::move(tuple));

        std::size_t pos = 0;
        while (pos < pending.size() && ++choice[pos] == options[pos].size()) {
          choice[pos++] = 0;
        }
        if (pos == pending.size()) break;
      }
      if (pending.empty()) {
        // No obligations: a single transition keeping the empty state.
        // (The loop above ran exactly once with an empty tuple assembly,
        // which already handled this case — nothing extra to do.)
      }
    }
  }

  RabinTreeAutomaton out(arena.alphabet(), branching, intern.size(), initial_id);
  for (auto& [from, symbol, tuple] : transitions) {
    out.add_transition(from, symbol, std::move(tuple));
  }
  // Büchi condition as a Rabin pair: green = breakpoint states (O = ∅).
  std::vector<State> green;
  for (State id = 0; id < out.num_states(); ++id) {
    if (intern.key(id).owing.empty()) green.push_back(id);
  }
  out.add_pair(green, {});

  if (stats != nullptr) {
    stats->alternating_states = static_cast<int>(alternating_states.size());
    stats->nondeterministic_states = out.num_states();
    stats->transitions = static_cast<int>(transitions.size());
  }
  return out;
}

}  // namespace slat::rabin
