// Rabin tree automata on k-ary infinite trees (paper §4.4).
//
// B = (Σ, Q, q0, δ, Φ) with δ : Q × Σ → P(Q^k) and Φ given by Rabin pairs
// (green_i, red_i): a run is accepting iff along every infinite path, for
// some i, some green_i state recurs and every red_i state eventually stops
// appearing.
//
// Decision procedures (emptiness, membership of a regular tree, prefix
// extendability) all reduce to Rabin games between "Automaton" (player 0,
// choosing transitions — and labels, where the input is unconstrained) and
// "Pathfinder" (player 1, choosing tree directions); the games module
// solves them exactly via IAR + Zielonka.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/memo_cache.hpp"
#include "trees/closures.hpp"
#include "trees/ktree.hpp"
#include "words/alphabet.hpp"

namespace slat::rabin {

using trees::KTree;
using words::Alphabet;
using words::Sym;

using State = int;

/// One Rabin acceptance pair.
struct RabinPair {
  std::vector<bool> green;  ///< per-state membership in green_i
  std::vector<bool> red;    ///< per-state membership in red_i
};

/// A transition target: the k successor states, one per direction.
using Tuple = std::vector<State>;

class RabinTreeAutomaton {
 public:
  RabinTreeAutomaton(Alphabet alphabet, int branching, int num_states, State initial);

  const Alphabet& alphabet() const { return alphabet_; }
  int branching() const { return branching_; }
  int num_states() const { return num_states_; }
  State initial() const { return initial_; }

  /// Adds δ(q, s) ∋ tuple (tuple.size() must equal branching()).
  void add_transition(State q, Sym s, Tuple tuple);
  const std::vector<Tuple>& transitions(State q, Sym s) const;

  int num_pairs() const { return static_cast<int>(pairs_.size()); }
  const RabinPair& pair(int i) const { return pairs_[i]; }
  /// Adds an acceptance pair; green/red are state lists.
  void add_pair(const std::vector<State>& green, const std::vector<State>& red);

  /// A Büchi-style trivial acceptance (every path accepts): the single pair
  /// (Q, ∅). Used by the closure construction.
  void set_trivial_acceptance();

  /// Per-state language emptiness: L(B with initial q) = ∅? Decided via the
  /// emptiness game, solved once for all states.
  std::vector<bool> states_with_nonempty_language() const;

  bool is_empty() const;

  /// Exact membership of a *total* regular tree with branching() children
  /// per node.
  bool accepts(const KTree& tree) const;

  /// Exact prefix extendability: does some total k-ary tree z extending
  /// `prefix` at its leaves satisfy z ∈ L(B)? For a total input this equals
  /// accepts(). Non-leaf nodes of `prefix` must have exactly k children.
  bool accepts_some_extension(const KTree& prefix) const;

  /// A regular tree in the language, if non-empty. Extracted from the
  /// Automaton's winning strategy in the emptiness game; the witness has at
  /// most |winning region of the IAR game| nodes.
  std::optional<KTree> find_accepted_tree() const;

  std::string to_string() const;

 private:
  Alphabet alphabet_;
  int branching_;
  int num_states_;
  State initial_;
  // delta_[q][s] = list of k-tuples.
  std::vector<std::vector<std::vector<Tuple>>> delta_;
  std::vector<RabinPair> pairs_;
};

/// 128-bit structural digest — the content address for the Rabin memo
/// caches (rfcl, per-state emptiness). Covers alphabet names, branching,
/// states, transitions in stored order, and the acceptance pairs.
core::Digest fingerprint(const RabinTreeAutomaton& automaton);

/// The finite-depth closure rfcl (paper §4.4): if L(B) = ∅ the automaton is
/// returned unchanged; otherwise states with empty residual language are
/// removed (transitions through them dropped) and the acceptance is made
/// trivial. L(rfcl B) = fcl(L(B)).
RabinTreeAutomaton rfcl(const RabinTreeAutomaton& automaton);

/// Theorem 9's decomposition, with the liveness part kept as an effective
/// boolean combination (Rabin tree complementation is substituted by the
/// membership oracle — see DESIGN.md): t ∈ live ⟺ t ∈ L(B) ∨ t ∉ L(rfcl B).
struct RabinDecomposition {
  RabinTreeAutomaton safety;  ///< rfcl(B)
  /// Decides membership in L(B) ∪ ¬L(rfcl B) for total regular trees.
  bool liveness_contains(const KTree& tree) const;
  /// Extendability for the liveness part: ∃z ⊒ x with z ∈ live? Sound and
  /// complete: z ∈ L(B) is game-decidable, and z ∉ L(rfcl B) holds for some
  /// extension iff NOT every extension is in the (safety) closure — also
  /// game-decidable on the closure automaton because a safety automaton's
  /// language is limit-determined. (Implemented as: extendable into L(B),
  /// or some extension escapes the closure.)
  bool liveness_extendable(const KTree& prefix) const;

  RabinTreeAutomaton original;  ///< the input automaton B
};

RabinDecomposition decompose(const RabinTreeAutomaton& automaton);

/// The automaton's language as a trees::TreeProperty (membership +
/// extendability oracles), ready for the bounded ncl/fcl machinery of
/// trees/closures.hpp. The returned property references `automaton`, which
/// must outlive it.
trees::TreeProperty as_tree_property(const RabinTreeAutomaton& automaton,
                                     std::string name);

/// Bounded non-total-closure membership for the automaton's language: the
/// §4.4 analogue of ncl, decided semantically (the paper defines rncl "
/// similarly" to rfcl but gives no construction; prunings up to `depth`
/// quantify the non-total prefixes). Over-approximates true ncl membership,
/// exactly like trees::in_ncl.
bool in_rncl_bounded(const RabinTreeAutomaton& automaton, const KTree& tree, int depth);

/// Does some total extension of `prefix` fall OUTSIDE the language of the
/// trivial-acceptance automaton? Exact for safety (limit-closed) languages:
/// membership is run existence, run existence is limit-determined (König),
/// so escaping reduces to assigning achievable "partial-run state sets" to
/// the prefix's leaves and checking a greatest fixpoint over its graph.
/// Precondition: `safety_automaton` has the rfcl shape (one pair (Q, ∅)).
bool some_extension_escapes(const RabinTreeAutomaton& safety_automaton,
                            const KTree& prefix);

}  // namespace slat::rabin
