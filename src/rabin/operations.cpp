#include "rabin/operations.hpp"

#include "common/assert.hpp"

namespace slat::rabin {

RabinTreeAutomaton unite(const RabinTreeAutomaton& lhs, const RabinTreeAutomaton& rhs) {
  SLAT_ASSERT(lhs.alphabet().size() == rhs.alphabet().size());
  SLAT_ASSERT(lhs.branching() == rhs.branching());
  const int n1 = lhs.num_states();
  const int n2 = rhs.num_states();
  // Layout: [lhs states][rhs states][fresh initial].
  RabinTreeAutomaton out(lhs.alphabet(), lhs.branching(), n1 + n2 + 1, n1 + n2);
  const auto copy_transitions = [&](const RabinTreeAutomaton& source, int offset,
                                    State from_override, State source_state) {
    for (Sym s = 0; s < source.alphabet().size(); ++s) {
      for (const Tuple& tuple : source.transitions(source_state, s)) {
        Tuple shifted(tuple.size());
        for (std::size_t i = 0; i < tuple.size(); ++i) shifted[i] = tuple[i] + offset;
        out.add_transition(from_override, s, std::move(shifted));
      }
    }
  };
  for (State q = 0; q < n1; ++q) copy_transitions(lhs, 0, q, q);
  for (State q = 0; q < n2; ++q) copy_transitions(rhs, n1, n1 + q, q);
  // The fresh initial state nondeterministically behaves like either
  // original initial state (it is visited once, so its marks are irrelevant).
  copy_transitions(lhs, 0, n1 + n2, lhs.initial());
  copy_transitions(rhs, n1, n1 + n2, rhs.initial());

  // Pairs side by side, each padded with "false" on the foreign states: a
  // path that stays in lhs can only satisfy lhs pairs, and vice versa.
  const auto shift_states = [&](const std::vector<bool>& member, int offset) {
    std::vector<State> states;
    for (std::size_t q = 0; q < member.size(); ++q) {
      if (member[q]) states.push_back(static_cast<State>(q) + offset);
    }
    return states;
  };
  for (int i = 0; i < lhs.num_pairs(); ++i) {
    out.add_pair(shift_states(lhs.pair(i).green, 0), shift_states(lhs.pair(i).red, 0));
  }
  for (int i = 0; i < rhs.num_pairs(); ++i) {
    out.add_pair(shift_states(rhs.pair(i).green, n1),
                 shift_states(rhs.pair(i).red, n1));
  }
  return out;
}

bool is_buchi_shaped(const RabinTreeAutomaton& automaton) {
  if (automaton.num_pairs() != 1) return false;
  for (State q = 0; q < automaton.num_states(); ++q) {
    if (automaton.pair(0).red[q]) return false;
  }
  return true;
}

RabinTreeAutomaton intersect_buchi(const RabinTreeAutomaton& lhs,
                                   const RabinTreeAutomaton& rhs) {
  SLAT_ASSERT(lhs.alphabet().size() == rhs.alphabet().size());
  SLAT_ASSERT(lhs.branching() == rhs.branching());
  SLAT_ASSERT_MSG(is_buchi_shaped(lhs) && is_buchi_shaped(rhs),
                  "intersect_buchi needs single (green, ∅) pairs");
  const int n1 = lhs.num_states();
  const int n2 = rhs.num_states();
  const int branching = lhs.branching();
  const auto id = [&](State q1, State q2, int counter) {
    return (q1 * n2 + q2) * 2 + counter;
  };
  RabinTreeAutomaton out(lhs.alphabet(), branching, n1 * n2 * 2,
                         id(lhs.initial(), rhs.initial(), 0));
  std::vector<State> green;
  for (State q1 = 0; q1 < n1; ++q1) {
    for (State q2 = 0; q2 < n2; ++q2) {
      for (int counter = 0; counter < 2; ++counter) {
        const State from = id(q1, q2, counter);
        // Accepting product states: counter 0 seeing a green of lhs (the
        // full 0 -> 1 -> 0 cycle passes one per round, on every path).
        if (counter == 0 && lhs.pair(0).green[q1]) green.push_back(from);
        int next_counter = counter;
        if (counter == 0 && lhs.pair(0).green[q1]) next_counter = 1;
        if (counter == 1 && rhs.pair(0).green[q2]) next_counter = 0;
        for (Sym s = 0; s < lhs.alphabet().size(); ++s) {
          for (const Tuple& t1 : lhs.transitions(q1, s)) {
            for (const Tuple& t2 : rhs.transitions(q2, s)) {
              Tuple tuple(branching);
              for (int j = 0; j < branching; ++j) {
                tuple[j] = id(t1[j], t2[j], next_counter);
              }
              out.add_transition(from, s, std::move(tuple));
            }
          }
        }
      }
    }
  }
  out.add_pair(green, {});
  return out;
}

}  // namespace slat::rabin
