#include "rabin/random.hpp"

#include "common/assert.hpp"

namespace slat::rabin {

RabinTreeAutomaton random_rabin(const RandomRabinConfig& config, std::mt19937& rng) {
  SLAT_ASSERT(config.num_states >= 1 && config.alphabet_size >= 1 &&
              config.branching >= 1 && config.num_pairs >= 0);
  RabinTreeAutomaton aut(words::Alphabet::of_size(config.alphabet_size),
                         config.branching, config.num_states, 0);
  std::poisson_distribution<int> tuple_count(config.tuples_per_slot);
  std::uniform_int_distribution<int> pick_state(0, config.num_states - 1);
  std::bernoulli_distribution green(config.green_probability);
  std::bernoulli_distribution red(config.red_probability);

  for (State q = 0; q < config.num_states; ++q) {
    for (Sym s = 0; s < config.alphabet_size; ++s) {
      const int count = tuple_count(rng);
      for (int i = 0; i < count; ++i) {
        Tuple tuple(config.branching);
        for (int j = 0; j < config.branching; ++j) tuple[j] = pick_state(rng);
        aut.add_transition(q, s, std::move(tuple));
      }
    }
  }
  for (int i = 0; i < config.num_pairs; ++i) {
    std::vector<State> greens, reds;
    for (State q = 0; q < config.num_states; ++q) {
      if (green(rng)) greens.push_back(q);
      if (red(rng)) reds.push_back(q);
    }
    aut.add_pair(greens, reds);
  }
  return aut;
}

}  // namespace slat::rabin
