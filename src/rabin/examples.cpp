#include "rabin/examples.hpp"

#include "words/alphabet.hpp"

namespace slat::rabin {

namespace {

constexpr Sym kA = 0;
constexpr Sym kB = 1;

Alphabet binary() { return words::Alphabet::binary(); }

}  // namespace

RabinTreeAutomaton aut_const_a() {
  RabinTreeAutomaton aut(binary(), 2, 1, 0);
  aut.add_transition(0, kA, {0, 0});
  aut.set_trivial_acceptance();
  return aut;
}

RabinTreeAutomaton aut_all_trees() {
  RabinTreeAutomaton aut(binary(), 2, 1, 0);
  aut.add_transition(0, kA, {0, 0});
  aut.add_transition(0, kB, {0, 0});
  aut.set_trivial_acceptance();
  return aut;
}

RabinTreeAutomaton aut_empty() {
  RabinTreeAutomaton aut(binary(), 2, 1, 0);
  aut.set_trivial_acceptance();
  return aut;
}

RabinTreeAutomaton aut_root_a() {
  // State 0: root, must read a; state 1: anything goes.
  RabinTreeAutomaton aut(binary(), 2, 2, 0);
  aut.add_transition(0, kA, {1, 1});
  aut.add_transition(1, kA, {1, 1});
  aut.add_transition(1, kB, {1, 1});
  aut.set_trivial_acceptance();
  return aut;
}

RabinTreeAutomaton aut_af_b() {
  // State 0: still waiting for b on this path (red); state 1: satisfied
  // (green, absorbing). Accepting iff every path leaves state 0 eventually.
  RabinTreeAutomaton aut(binary(), 2, 2, 0);
  aut.add_transition(0, kA, {0, 0});
  aut.add_transition(0, kB, {1, 1});
  aut.add_transition(1, kA, {1, 1});
  aut.add_transition(1, kB, {1, 1});
  aut.add_pair(/*green=*/{1}, /*red=*/{0});
  return aut;
}

RabinTreeAutomaton aut_agf_b() {
  // State records the label just read: 0 after a, 1 after b. Every path
  // must visit state 1 infinitely often (the root's own label is shifted
  // out of the acceptance condition, which is inf-behaviour only).
  RabinTreeAutomaton aut(binary(), 2, 2, 0);
  for (State q = 0; q < 2; ++q) {
    aut.add_transition(q, kA, {0, 0});
    aut.add_transition(q, kB, {1, 1});
  }
  aut.add_pair(/*green=*/{1}, /*red=*/{});
  return aut;
}

RabinTreeAutomaton aut_efg_b() {
  // State 0 = "top" (path no longer guessed, anything goes, green);
  // state 1 = "chasing" the guessed path (red);
  // state 2 = "committed": the guessed path must now read b forever (green).
  RabinTreeAutomaton aut(binary(), 2, 3, 1);
  for (Sym s : {kA, kB}) {
    aut.add_transition(0, s, {0, 0});
    // The chase continues in one direction, or commits in one direction.
    aut.add_transition(1, s, {1, 0});
    aut.add_transition(1, s, {0, 1});
    aut.add_transition(1, s, {2, 0});
    aut.add_transition(1, s, {0, 2});
  }
  aut.add_transition(2, kB, {2, 0});
  aut.add_transition(2, kB, {0, 2});
  aut.add_pair(/*green=*/{0, 2}, /*red=*/{1});
  return aut;
}

RabinTreeAutomaton aut_afg_b() {
  // Deterministic: state = label just read (0 after a, 1 after b); accept
  // iff every path reads a only finitely often: green = {1}, red = {0}.
  RabinTreeAutomaton aut(binary(), 2, 2, 1);
  for (State q = 0; q < 2; ++q) {
    aut.add_transition(q, kA, {0, 0});
    aut.add_transition(q, kB, {1, 1});
  }
  aut.add_pair(/*green=*/{1}, /*red=*/{0});
  return aut;
}

}  // namespace slat::rabin
