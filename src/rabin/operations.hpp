// Boolean operations on Rabin tree automata — the closure properties that
// make Rabin-definable tree languages a lattice (§4.4: "languages definable
// by Rabin automata are effectively closed under complementation,
// intersection, and union").
//
//   * union: any two Rabin automata (disjoint sum, pairs side by side);
//   * intersection: implemented for BÜCHI-shaped automata (a single pair
//     (green, ∅) — everything rfcl and from_ctl produce) via the per-path
//     two-counter construction, mirroring the word case;
//   * complementation is the documented substitution (DESIGN.md §3): the
//     decision procedures use game duality instead of a constructed
//     complement automaton.
#pragma once

#include "rabin/rabin_tree_automaton.hpp"

namespace slat::rabin {

/// L(result) = L(lhs) ∪ L(rhs). Works for arbitrary Rabin acceptance.
RabinTreeAutomaton unite(const RabinTreeAutomaton& lhs, const RabinTreeAutomaton& rhs);

/// Is the acceptance a single (green, ∅) pair? (Büchi-shaped.)
bool is_buchi_shaped(const RabinTreeAutomaton& automaton);

/// L(result) = L(lhs) ∩ L(rhs); both inputs must be Büchi-shaped. Per path,
/// the counter waits for a green of lhs, then one of rhs, and resets —
/// exactly the degeneralization used for word automata, applied branchwise.
RabinTreeAutomaton intersect_buchi(const RabinTreeAutomaton& lhs,
                                   const RabinTreeAutomaton& rhs);

}  // namespace slat::rabin
