// The branching-time versions of Rem's examples (paper §4.3), over the
// binary alphabet {a, b} (b = "any symbol different from a").
//
//   q0 : false            q4a : A FG !a        q5a : A GF a
//   q1 : a                q4b : E FG !a        q5b : E GF a
//   q2 : !a               q6  : true
//   q3a: a & A F !a       q3b : a & E F !a
//
// Each example carries exact graph-algorithmic oracles on regular trees
// (q4*/q5* are CTL*, not CTL, so they cannot be model-checked by the CTL
// module; all reduce to cycle analysis on the tree's graph):
//   * "∃ infinite path from the root all of whose nodes satisfy p"
//     ⟺ the root reaches a cycle inside the p-induced subgraph,
//   * "∃ infinite path visiting p infinitely often"
//     ⟺ some reachable cycle contains a p-node,
// and extensions fill leaves with a^ω / b^ω as needed.
#pragma once

#include <string>
#include <vector>

#include "trees/closures.hpp"
#include "trees/ktree.hpp"

namespace slat::trees {

struct RemBranchingExample {
  std::string name;         ///< q0 .. q6
  std::string description;  ///< informal reading from the paper
  std::string ctl;          ///< CTL rendering, empty when the property is CTL* only
  TreeProperty property;
  BranchingClassification expected;  ///< the paper's §4.3 classification
};

/// The ten examples in paper order (q0, q1, q2, q3a, q3b, q4a, q4b, q5a,
/// q5b, q6), over words::Alphabet::binary().
std::vector<RemBranchingExample> rem_branching_examples();

/// Witness trees the paper's §4.3 arguments use, to be appended to any
/// classification corpus: the constant trees a^ω / b^ω as sequences and as
/// binary trees, and the "two paths, one of them all-a" tree.
std::vector<KTree> paper_witness_trees();

// Reusable graph predicates (exposed for tests).

/// Is there an infinite path from the root all of whose nodes are labeled
/// `s`? (Leaves terminate paths, so such a path lives in the s-induced
/// subgraph and must reach a cycle of it.)
bool exists_monochrome_path(const KTree& tree, Sym s);

/// Is there a reachable cycle containing a node labeled `s`? (⟺ some
/// infinite path visits `s` infinitely often.)
bool exists_cycle_visiting(const KTree& tree, Sym s);

/// Is there a reachable cycle all of whose nodes are labeled `s`? (⟺ some
/// infinite path is eventually all-`s`.)
bool exists_monochrome_cycle(const KTree& tree, Sym s);

/// Is any leaf reachable from the root?
bool has_reachable_leaf(const KTree& tree);

/// Is any node labeled `s` reachable from the root?
bool reaches_label(const KTree& tree, Sym s);

}  // namespace slat::trees
