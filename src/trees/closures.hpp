// The branching-time closures ncl and fcl (paper §4.2), as bounded-depth
// decision procedures over regular trees.
//
//   fcl.P = { y total : every finite-depth prefix of y extends into P }
//   ncl.P = { y total : every non-total prefix of y extends into P }
//
// A property is supplied as a pair of oracles over regular trees:
//   contains(x)    — is the total tree x in P?
//   extendable(x)  — does some total z ⊒ x (extension at x's leaves) lie in P?
// Both oracles receive regular trees (possibly with leaves) and must be
// exact on them; the closure checks then quantify over prefixes *up to a
// depth bound*:
//   * fcl: finite prefixes are downward-closed under ≼, so only the deepest
//     truncation needs checking — in_fcl(y, D) tests truncate(y, D).
//   * ncl: prefixes are y pruned at any non-empty antichain of positions of
//     depth ≤ D (this includes all finite truncations, and the crucial
//     "cut one subtree, keep another infinite" prefixes from the paper's
//     §4.3 counterexamples).
//
// Both checks are over-approximations of membership that become exact as
// D grows past the property's automaton index; EXPERIMENTS.md records the
// bounds used for each reported claim.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "trees/ktree.hpp"

namespace slat::trees {

/// A branching-time property with decision oracles on regular trees.
struct TreeProperty {
  std::string name;
  /// Membership of a *total* regular tree.
  std::function<bool(const KTree&)> contains;
  /// Extension: does some total completion (growing arbitrary subtrees at
  /// every leaf) belong to the property? For a total input this must agree
  /// with `contains`.
  std::function<bool(const KTree&)> extendable;
};

/// y ∈ fcl.P, checked at depth bound `depth`.
bool in_fcl(const TreeProperty& property, const KTree& y, int depth);

/// y ∈ ncl.P, checked with cut positions of depth ≤ `depth`. Exponential in
/// the number of positions; intended for small trees/depths.
bool in_ncl(const TreeProperty& property, const KTree& y, int depth);

/// The classification grid of §4.2–4.3.
struct BranchingClassification {
  bool existentially_safe;  ///< P = ncl.P on the corpus
  bool universally_safe;    ///< P = fcl.P on the corpus
  bool existentially_live;  ///< ncl.P ⊇ corpus (ncl.P = A_tot)
  bool universally_live;    ///< fcl.P ⊇ corpus (fcl.P = A_tot)
};

/// Classifies a property against a corpus of total trees: safety asks
/// membership in P ⟺ membership in the closure for every corpus tree,
/// liveness asks the closure to contain every corpus tree. Sound for
/// refutation; "true" means "not refuted by the corpus at this depth".
BranchingClassification classify(const TreeProperty& property,
                                 const std::vector<KTree>& corpus, int depth);

/// A corpus of small total regular trees over the alphabet: all total
/// regular trees with ≤ `max_nodes` graph nodes and arity between 1 and
/// `max_arity` (deduplicated by unfolding up to `max_nodes` rounds), plus
/// nothing else. Sequences (arity-1 chains) are included — the paper's
/// §4.3 examples depend on them.
std::vector<KTree> total_tree_corpus(const Alphabet& alphabet, int max_nodes,
                                     int max_arity);

}  // namespace slat::trees
