#include "trees/ctl.hpp"

#include <cctype>

#include "common/assert.hpp"

namespace slat::trees {

CtlArena::CtlArena(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

CtlId CtlArena::intern(CtlNode node) {
  auto it = index_.find(node);
  if (it != index_.end()) return it->second;
  const CtlId id = static_cast<CtlId>(nodes_.size());
  nodes_.push_back(node);
  index_.emplace(node, id);
  return id;
}

const CtlNode& CtlArena::node(CtlId f) const {
  SLAT_ASSERT(f >= 0 && f < size());
  return nodes_[f];
}

CtlId CtlArena::tru() { return intern({CtlOp::kTrue}); }
CtlId CtlArena::fls() { return intern({CtlOp::kFalse}); }

CtlId CtlArena::atom(Sym s) {
  SLAT_ASSERT(s >= 0 && s < alphabet_.size());
  return intern({CtlOp::kAtom, s});
}

CtlId CtlArena::atom(std::string_view name) {
  const auto s = alphabet_.index_of(name);
  SLAT_ASSERT_MSG(s.has_value(), "atom name not in alphabet");
  return atom(*s);
}

CtlId CtlArena::negation(CtlId f) {
  const CtlNode& n = node(f);
  if (n.op == CtlOp::kTrue) return fls();
  if (n.op == CtlOp::kFalse) return tru();
  if (n.op == CtlOp::kNot) return n.lhs;
  return intern({CtlOp::kNot, -1, f});
}

CtlId CtlArena::conj(CtlId lhs, CtlId rhs) {
  if (node(lhs).op == CtlOp::kTrue) return rhs;
  if (node(rhs).op == CtlOp::kTrue) return lhs;
  if (node(lhs).op == CtlOp::kFalse || node(rhs).op == CtlOp::kFalse) return fls();
  if (lhs == rhs) return lhs;
  if (lhs > rhs) std::swap(lhs, rhs);
  return intern({CtlOp::kAnd, -1, lhs, rhs});
}

CtlId CtlArena::disj(CtlId lhs, CtlId rhs) {
  if (node(lhs).op == CtlOp::kFalse) return rhs;
  if (node(rhs).op == CtlOp::kFalse) return lhs;
  if (node(lhs).op == CtlOp::kTrue || node(rhs).op == CtlOp::kTrue) return tru();
  if (lhs == rhs) return lhs;
  if (lhs > rhs) std::swap(lhs, rhs);
  return intern({CtlOp::kOr, -1, lhs, rhs});
}

CtlId CtlArena::implies(CtlId lhs, CtlId rhs) { return intern({CtlOp::kImplies, -1, lhs, rhs}); }
CtlId CtlArena::ex(CtlId f) { return intern({CtlOp::kEX, -1, f}); }
CtlId CtlArena::ax(CtlId f) { return intern({CtlOp::kAX, -1, f}); }
CtlId CtlArena::ef(CtlId f) { return intern({CtlOp::kEF, -1, f}); }
CtlId CtlArena::af(CtlId f) { return intern({CtlOp::kAF, -1, f}); }
CtlId CtlArena::eg(CtlId f) { return intern({CtlOp::kEG, -1, f}); }
CtlId CtlArena::ag(CtlId f) { return intern({CtlOp::kAG, -1, f}); }
CtlId CtlArena::eu(CtlId lhs, CtlId rhs) { return intern({CtlOp::kEU, -1, lhs, rhs}); }
CtlId CtlArena::au(CtlId lhs, CtlId rhs) { return intern({CtlOp::kAU, -1, lhs, rhs}); }
CtlId CtlArena::er(CtlId lhs, CtlId rhs) { return intern({CtlOp::kER, -1, lhs, rhs}); }
CtlId CtlArena::ar(CtlId lhs, CtlId rhs) { return intern({CtlOp::kAR, -1, lhs, rhs}); }

namespace {

CtlId nnf_rec(CtlArena& arena, CtlId f, bool negated) {
  const CtlNode n = arena.node(f);
  switch (n.op) {
    case CtlOp::kTrue:
      return negated ? arena.fls() : arena.tru();
    case CtlOp::kFalse:
      return negated ? arena.tru() : arena.fls();
    case CtlOp::kAtom:
      return negated ? arena.negation(f) : f;
    case CtlOp::kNot:
      return nnf_rec(arena, n.lhs, !negated);
    case CtlOp::kAnd: {
      const CtlId lhs = nnf_rec(arena, n.lhs, negated);
      const CtlId rhs = nnf_rec(arena, n.rhs, negated);
      return negated ? arena.disj(lhs, rhs) : arena.conj(lhs, rhs);
    }
    case CtlOp::kOr: {
      const CtlId lhs = nnf_rec(arena, n.lhs, negated);
      const CtlId rhs = nnf_rec(arena, n.rhs, negated);
      return negated ? arena.conj(lhs, rhs) : arena.disj(lhs, rhs);
    }
    case CtlOp::kImplies:
      return negated
                 ? arena.conj(nnf_rec(arena, n.lhs, false), nnf_rec(arena, n.rhs, true))
                 : arena.disj(nnf_rec(arena, n.lhs, true), nnf_rec(arena, n.rhs, false));
    case CtlOp::kEX:
      return negated ? arena.ax(nnf_rec(arena, n.lhs, true))
                     : arena.ex(nnf_rec(arena, n.lhs, false));
    case CtlOp::kAX:
      return negated ? arena.ex(nnf_rec(arena, n.lhs, true))
                     : arena.ax(nnf_rec(arena, n.lhs, false));
    case CtlOp::kEF:
      // EF φ = E[true U φ];  ¬EF φ = A[false R ¬φ] (= AG ¬φ).
      return negated ? arena.ar(arena.fls(), nnf_rec(arena, n.lhs, true))
                     : arena.eu(arena.tru(), nnf_rec(arena, n.lhs, false));
    case CtlOp::kAF:
      return negated ? arena.er(arena.fls(), nnf_rec(arena, n.lhs, true))
                     : arena.au(arena.tru(), nnf_rec(arena, n.lhs, false));
    case CtlOp::kEG:
      // EG φ = E[false R φ];  ¬EG φ = A[true U ¬φ] (= AF ¬φ).
      return negated ? arena.au(arena.tru(), nnf_rec(arena, n.lhs, true))
                     : arena.er(arena.fls(), nnf_rec(arena, n.lhs, false));
    case CtlOp::kAG:
      return negated ? arena.eu(arena.tru(), nnf_rec(arena, n.lhs, true))
                     : arena.ar(arena.fls(), nnf_rec(arena, n.lhs, false));
    case CtlOp::kEU: {
      const CtlId lhs = nnf_rec(arena, n.lhs, negated);
      const CtlId rhs = nnf_rec(arena, n.rhs, negated);
      // ¬E[φ U ψ] = A[¬φ R ¬ψ].
      return negated ? arena.ar(lhs, rhs) : arena.eu(lhs, rhs);
    }
    case CtlOp::kAU: {
      const CtlId lhs = nnf_rec(arena, n.lhs, negated);
      const CtlId rhs = nnf_rec(arena, n.rhs, negated);
      return negated ? arena.er(lhs, rhs) : arena.au(lhs, rhs);
    }
    case CtlOp::kER: {
      const CtlId lhs = nnf_rec(arena, n.lhs, negated);
      const CtlId rhs = nnf_rec(arena, n.rhs, negated);
      return negated ? arena.au(lhs, rhs) : arena.er(lhs, rhs);
    }
    case CtlOp::kAR: {
      const CtlId lhs = nnf_rec(arena, n.lhs, negated);
      const CtlId rhs = nnf_rec(arena, n.rhs, negated);
      return negated ? arena.eu(lhs, rhs) : arena.ar(lhs, rhs);
    }
  }
  SLAT_ASSERT_MSG(false, "unhandled op in CTL nnf");
  return f;
}

}  // namespace

CtlId CtlArena::nnf(CtlId f) { return nnf_rec(*this, f, false); }

// ---------------------------------------------------------------------------
// Model checking
// ---------------------------------------------------------------------------

namespace {

class Checker {
 public:
  Checker(const CtlArena& arena, const KTree& tree) : arena_(arena), tree_(tree) {}

  std::vector<bool> eval(CtlId f) {
    auto it = cache_.find(f);
    if (it != cache_.end()) return it->second;
    const int n = tree_.num_nodes();
    std::vector<bool> result(n, false);
    const CtlNode& node = arena_.node(f);
    switch (node.op) {
      case CtlOp::kTrue:
        result.assign(n, true);
        break;
      case CtlOp::kFalse:
        break;
      case CtlOp::kAtom:
        for (int v = 0; v < n; ++v) result[v] = tree_.label(v) == node.atom;
        break;
      case CtlOp::kNot: {
        const auto sub = eval(node.lhs);
        for (int v = 0; v < n; ++v) result[v] = !sub[v];
        break;
      }
      case CtlOp::kAnd: {
        const auto lhs = eval(node.lhs), rhs = eval(node.rhs);
        for (int v = 0; v < n; ++v) result[v] = lhs[v] && rhs[v];
        break;
      }
      case CtlOp::kOr: {
        const auto lhs = eval(node.lhs), rhs = eval(node.rhs);
        for (int v = 0; v < n; ++v) result[v] = lhs[v] || rhs[v];
        break;
      }
      case CtlOp::kImplies: {
        const auto lhs = eval(node.lhs), rhs = eval(node.rhs);
        for (int v = 0; v < n; ++v) result[v] = !lhs[v] || rhs[v];
        break;
      }
      case CtlOp::kEX: {
        const auto sub = eval(node.lhs);
        for (int v = 0; v < n; ++v) result[v] = any_child(v, sub);
        break;
      }
      case CtlOp::kAX: {
        const auto sub = eval(node.lhs);
        for (int v = 0; v < n; ++v) result[v] = all_children(v, sub);
        break;
      }
      case CtlOp::kEF:
        result = least_fixpoint(eval(node.lhs), /*universal=*/false,
                                /*guard=*/std::vector<bool>(n, true));
        break;
      case CtlOp::kAF:
        result = least_fixpoint(eval(node.lhs), /*universal=*/true,
                                /*guard=*/std::vector<bool>(n, true));
        break;
      case CtlOp::kEU:
        result = least_fixpoint(eval(node.rhs), /*universal=*/false, eval(node.lhs));
        break;
      case CtlOp::kAU:
        result = least_fixpoint(eval(node.rhs), /*universal=*/true, eval(node.lhs));
        break;
      case CtlOp::kEG:
        result = release_fixpoint(eval(node.lhs),
                                  std::vector<bool>(n, false), /*universal=*/false);
        break;
      case CtlOp::kAG:
        result = release_fixpoint(eval(node.lhs),
                                  std::vector<bool>(n, false), /*universal=*/true);
        break;
      case CtlOp::kER:
        result = release_fixpoint(eval(node.rhs), eval(node.lhs), /*universal=*/false);
        break;
      case CtlOp::kAR:
        result = release_fixpoint(eval(node.rhs), eval(node.lhs), /*universal=*/true);
        break;
    }
    cache_.emplace(f, result);
    return result;
  }

 private:
  bool any_child(int v, const std::vector<bool>& set) const {
    for (int c : tree_.children(v)) {
      if (set[c]) return true;
    }
    return false;
  }
  bool all_children(int v, const std::vector<bool>& set) const {
    for (int c : tree_.children(v)) {
      if (!set[c]) return false;
    }
    return true;
  }

  // μZ. target ∨ (guard ∧ ○Z), with ○ existential or universal.
  std::vector<bool> least_fixpoint(std::vector<bool> target, bool universal,
                                   std::vector<bool> guard) {
    std::vector<bool> current = std::move(target);
    for (bool changed = true; changed;) {
      changed = false;
      for (int v = 0; v < tree_.num_nodes(); ++v) {
        if (current[v] || !guard[v]) continue;
        const bool step = universal ? all_children(v, current) : any_child(v, current);
        if (step) {
          current[v] = true;
          changed = true;
        }
      }
    }
    return current;
  }

  // νZ. psi ∧ (phi ∨ ○Z) — the release fixpoint; with phi ≡ false this is
  // the plain νZ. psi ∧ ○Z of EG/AG.
  std::vector<bool> release_fixpoint(std::vector<bool> psi, std::vector<bool> phi,
                                     bool universal) {
    std::vector<bool> current = std::move(psi);
    for (bool changed = true; changed;) {
      changed = false;
      for (int v = 0; v < tree_.num_nodes(); ++v) {
        if (!current[v] || phi[v]) continue;
        const bool step = universal ? all_children(v, current) : any_child(v, current);
        if (!step) {
          current[v] = false;
          changed = true;
        }
      }
    }
    return current;
  }

  const CtlArena& arena_;
  const KTree& tree_;
  std::map<CtlId, std::vector<bool>> cache_;
};

}  // namespace

std::vector<bool> satisfying_nodes(const CtlArena& arena, CtlId f, const KTree& tree) {
  SLAT_ASSERT_MSG(tree.is_total(), "CTL model checking expects a total tree");
  Checker checker(arena, tree);
  return checker.eval(f);
}

bool holds(const CtlArena& arena, CtlId f, const KTree& tree) {
  return satisfying_nodes(arena, f, tree)[tree.root()];
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct CtlParser {
  CtlArena& arena;
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  void skip_space() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool eat(char c) {
    skip_space();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool eat_word(std::string_view word) {
    skip_space();
    if (text.substr(pos, word.size()) == word) {
      const std::size_t after = pos + word.size();
      if (after < text.size() &&
          (std::isalnum(static_cast<unsigned char>(text[after])) || text[after] == '_')) {
        return false;
      }
      pos = after;
      return true;
    }
    return false;
  }

  std::optional<CtlId> fail(std::string message) {
    if (error.empty()) error = message + " at offset " + std::to_string(pos);
    return std::nullopt;
  }

  std::optional<std::string> ident() {
    skip_space();
    std::size_t start = pos;
    if (pos < text.size() &&
        (std::isalpha(static_cast<unsigned char>(text[pos])) || text[pos] == '_')) {
      ++pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '_')) {
        ++pos;
      }
      return std::string(text.substr(start, pos - start));
    }
    return std::nullopt;
  }

  // E(φ U ψ), A(φ U ψ), E(φ R ψ), A(φ R ψ).
  std::optional<CtlId> quantified_until(bool universal) {
    if (!eat('(')) return fail("expected '(' after path quantifier");
    auto lhs = implies_level();
    if (!lhs) return std::nullopt;
    bool release = false;
    if (eat_word("R")) {
      release = true;
    } else if (!eat_word("U")) {
      return fail("expected 'U' or 'R' in quantified path formula");
    }
    auto rhs = implies_level();
    if (!rhs) return std::nullopt;
    if (!eat(')')) return fail("expected ')'");
    if (release) return universal ? arena.ar(*lhs, *rhs) : arena.er(*lhs, *rhs);
    return universal ? arena.au(*lhs, *rhs) : arena.eu(*lhs, *rhs);
  }

  std::optional<CtlId> unary() {
    skip_space();
    if (eat('!')) {
      auto f = unary();
      return f ? std::optional(arena.negation(*f)) : std::nullopt;
    }
    struct UnaryOp {
      const char* name;
      CtlId (CtlArena::*make)(CtlId);
    };
    static constexpr UnaryOp kOps[] = {
        {"EX", &CtlArena::ex}, {"AX", &CtlArena::ax}, {"EF", &CtlArena::ef},
        {"AF", &CtlArena::af}, {"EG", &CtlArena::eg}, {"AG", &CtlArena::ag},
    };
    for (const auto& op : kOps) {
      if (eat_word(op.name)) {
        auto f = unary();
        return f ? std::optional((arena.*(op.make))(*f)) : std::nullopt;
      }
    }
    if (eat_word("E")) return quantified_until(false);
    if (eat_word("A")) return quantified_until(true);
    if (eat('(')) {
      auto f = implies_level();
      if (!f) return std::nullopt;
      if (!eat(')')) return fail("expected ')'");
      return f;
    }
    if (eat_word("true")) return arena.tru();
    if (eat_word("false")) return arena.fls();
    if (auto name = ident()) {
      if (auto s = arena.alphabet().index_of(*name)) return arena.atom(*s);
      return fail("unknown atom '" + *name + "'");
    }
    return fail("expected a formula");
  }

  std::optional<CtlId> and_level() {
    auto lhs = unary();
    if (!lhs) return std::nullopt;
    while (eat('&')) {
      auto rhs = unary();
      if (!rhs) return std::nullopt;
      lhs = arena.conj(*lhs, *rhs);
    }
    return lhs;
  }

  std::optional<CtlId> or_level() {
    auto lhs = and_level();
    if (!lhs) return std::nullopt;
    while (eat('|')) {
      auto rhs = and_level();
      if (!rhs) return std::nullopt;
      lhs = arena.disj(*lhs, *rhs);
    }
    return lhs;
  }

  std::optional<CtlId> implies_level() {
    auto lhs = or_level();
    if (!lhs) return std::nullopt;
    skip_space();
    if (pos + 1 < text.size() && text[pos] == '-' && text[pos + 1] == '>') {
      pos += 2;
      auto rhs = implies_level();
      if (!rhs) return std::nullopt;
      return arena.implies(*lhs, *rhs);
    }
    return lhs;
  }

  bool at_end() {
    skip_space();
    return pos >= text.size();
  }
};

}  // namespace

std::optional<CtlId> CtlArena::parse(std::string_view text, std::string* error) {
  CtlParser parser{*this, text, 0, {}};
  auto result = parser.implies_level();
  if (result && !parser.at_end()) result = parser.fail("trailing input");
  if (!result && error != nullptr) *error = parser.error;
  return result;
}

std::string CtlArena::to_string(CtlId f) const {
  const CtlNode& n = node(f);
  const auto paren = [&](CtlId g) {
    const CtlOp op = node(g).op;
    const bool atomic = op == CtlOp::kTrue || op == CtlOp::kFalse || op == CtlOp::kAtom ||
                        op == CtlOp::kNot || op == CtlOp::kEX || op == CtlOp::kAX ||
                        op == CtlOp::kEF || op == CtlOp::kAF || op == CtlOp::kEG ||
                        op == CtlOp::kAG;
    return atomic ? to_string(g) : "(" + to_string(g) + ")";
  };
  switch (n.op) {
    case CtlOp::kTrue:
      return "true";
    case CtlOp::kFalse:
      return "false";
    case CtlOp::kAtom:
      return alphabet_.name(n.atom);
    case CtlOp::kNot:
      return "!" + paren(n.lhs);
    case CtlOp::kAnd:
      return paren(n.lhs) + " & " + paren(n.rhs);
    case CtlOp::kOr:
      return paren(n.lhs) + " | " + paren(n.rhs);
    case CtlOp::kImplies:
      return paren(n.lhs) + " -> " + paren(n.rhs);
    case CtlOp::kEX:
      return "EX " + paren(n.lhs);
    case CtlOp::kAX:
      return "AX " + paren(n.lhs);
    case CtlOp::kEF:
      return "EF " + paren(n.lhs);
    case CtlOp::kAF:
      return "AF " + paren(n.lhs);
    case CtlOp::kEG:
      return "EG " + paren(n.lhs);
    case CtlOp::kAG:
      return "AG " + paren(n.lhs);
    case CtlOp::kEU:
      return "E(" + to_string(n.lhs) + " U " + to_string(n.rhs) + ")";
    case CtlOp::kAU:
      return "A(" + to_string(n.lhs) + " U " + to_string(n.rhs) + ")";
    case CtlOp::kER:
      return "E(" + to_string(n.lhs) + " R " + to_string(n.rhs) + ")";
    case CtlOp::kAR:
      return "A(" + to_string(n.lhs) + " R " + to_string(n.rhs) + ")";
  }
  return "?";
}

}  // namespace slat::trees
