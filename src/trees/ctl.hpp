// CTL over regular trees (paper §4.3).
//
// CTL is bisimulation-invariant and a regular tree is bisimilar to its
// finite graph, so model checking the graph with the standard fixpoint
// algorithms decides membership of the regular tree's unfolding in the CTL
// property — exactly. Atoms are alphabet letters, as in the LTL module.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trees/ktree.hpp"

namespace slat::trees {

using CtlId = int;

enum class CtlOp : std::uint8_t {
  kTrue,
  kFalse,
  kAtom,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kEX,  // on some child
  kAX,  // on every child
  kEF,
  kAF,
  kEG,
  kAG,
  kEU,  // E[φ U ψ]
  kAU,  // A[φ U ψ]
  kER,  // E[φ R ψ]  (release: ψ holds up to and including the first φ∧ψ)
  kAR,  // A[φ R ψ]
};

struct CtlNode {
  CtlOp op;
  Sym atom = -1;
  CtlId lhs = -1;
  CtlId rhs = -1;

  auto operator<=>(const CtlNode&) const = default;
};

/// Interning arena for CTL formulas, mirroring LtlArena.
class CtlArena {
 public:
  explicit CtlArena(Alphabet alphabet);

  const Alphabet& alphabet() const { return alphabet_; }

  CtlId tru();
  CtlId fls();
  CtlId atom(Sym s);
  CtlId atom(std::string_view name);
  CtlId negation(CtlId f);
  CtlId conj(CtlId lhs, CtlId rhs);
  CtlId disj(CtlId lhs, CtlId rhs);
  CtlId implies(CtlId lhs, CtlId rhs);
  CtlId ex(CtlId f);
  CtlId ax(CtlId f);
  CtlId ef(CtlId f);
  CtlId af(CtlId f);
  CtlId eg(CtlId f);
  CtlId ag(CtlId f);
  CtlId eu(CtlId lhs, CtlId rhs);
  CtlId au(CtlId lhs, CtlId rhs);
  CtlId er(CtlId lhs, CtlId rhs);
  CtlId ar(CtlId lhs, CtlId rhs);

  /// Negation normal form over the core ops {true, false, atom, ¬atom, ∧,
  /// ∨, EX, AX, EU, AU, ER, AR}: EF/AF become untils, EG/AG become
  /// releases, negations are pushed to the atoms (EX/AX, EU/AR and AU/ER
  /// are dual pairs).
  CtlId nnf(CtlId f);

  const CtlNode& node(CtlId f) const;
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Parser for e.g. "a & AF !a", "E(a U b)", "EX a", "AG (a -> EF b)".
  /// Path quantifier pairs are single tokens: EX AX EF AF EG AG, and
  /// E(φ U ψ) / A(φ U ψ) for until.
  std::optional<CtlId> parse(std::string_view text, std::string* error = nullptr);

  std::string to_string(CtlId f) const;

 private:
  CtlId intern(CtlNode node);

  Alphabet alphabet_;
  std::vector<CtlNode> nodes_;
  std::map<CtlNode, CtlId> index_;
};

/// The set of graph nodes of `tree` whose unfolding satisfies f. Requires a
/// total tree (CTL path quantifiers presuppose infinite paths; the paper's
/// branching-time properties are sets of total trees).
std::vector<bool> satisfying_nodes(const CtlArena& arena, CtlId f, const KTree& tree);

/// Does the tree (from its root) satisfy f?
bool holds(const CtlArena& arena, CtlId f, const KTree& tree);

}  // namespace slat::trees
