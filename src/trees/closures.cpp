#include "trees/closures.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "common/assert.hpp"
#include "core/memo_cache.hpp"

namespace slat::trees {

bool in_fcl(const TreeProperty& property, const KTree& y, int depth) {
  SLAT_ASSERT_MSG(y.is_total(), "closure membership is defined on total trees");
  // Finite prefixes are ≼-below the deepest truncation, and extendability is
  // antitone in ≼, so the deepest truncation decides all of them.
  return property.extendable(y.truncate(depth));
}

namespace {

bool is_antichain(const std::vector<Position>& positions, std::uint32_t mask) {
  std::vector<const Position*> chosen;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (mask >> i & 1u) chosen.push_back(&positions[i]);
  }
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      if (i == j) continue;
      const Position& p = *chosen[i];
      const Position& q = *chosen[j];
      if (p.size() <= q.size() && std::equal(p.begin(), p.end(), q.begin())) {
        return false;  // p is a (possibly equal) prefix of q
      }
    }
  }
  return true;
}

// Every antichain pruning of y up to `depth`, in ascending mask order — the
// exact enumeration order of the uncached loop below. This corpus is a pure
// function of the tree and the depth (the PROPERTY never enters), so one
// cache entry serves every property queried against the same tree, which is
// precisely the bench_rem_branching access pattern (10 Rem properties × one
// shared corpus). Entries are shared_ptrs: a hit copies a pointer, not a
// vector of trees.
std::shared_ptr<const std::vector<KTree>> antichain_prunings(
    const KTree& y, int depth, const std::vector<Position>& positions) {
  const auto build = [&] {
    auto out = std::make_shared<std::vector<KTree>>();
    const std::uint32_t limit = 1u << positions.size();
    for (std::uint32_t mask = 1; mask < limit; ++mask) {
      if (!is_antichain(positions, mask)) continue;
      std::vector<Position> cuts;
      for (std::size_t i = 0; i < positions.size(); ++i) {
        if (mask >> i & 1u) cuts.push_back(positions[i]);
      }
      out->push_back(y.prune_at(cuts));
    }
    return std::shared_ptr<const std::vector<KTree>>(std::move(out));
  };
  // Beyond 12 positions the corpus can hold thousands of trees; stream it
  // per call instead of pinning it in the cache.
  if (positions.size() > 12) return build();
  static core::MemoCache<std::shared_ptr<const std::vector<KTree>>>& cache =
      *new core::MemoCache<std::shared_ptr<const std::vector<KTree>>>("trees.prunings");
  return cache.get_or_compute(core::DigestBuilder()
                                  .add_string("prunings")
                                  .add_digest(fingerprint(y))
                                  .add_int(depth)
                                  .digest(),
                              build);
}

}  // namespace

bool in_ncl(const TreeProperty& property, const KTree& y, int depth) {
  SLAT_ASSERT_MSG(y.is_total(), "closure membership is defined on total trees");
  const std::vector<Position> positions = y.positions_up_to(depth);
  SLAT_ASSERT_MSG(positions.size() <= 20, "too many cut positions; lower the depth");
  const auto prunings = antichain_prunings(y, depth, positions);
  for (const KTree& pruned : *prunings) {
    if (!property.extendable(pruned)) return false;
  }
  return true;
}

BranchingClassification classify(const TreeProperty& property,
                                 const std::vector<KTree>& corpus, int depth) {
  BranchingClassification result{true, true, true, true};
  for (const KTree& y : corpus) {
    const bool member = property.contains(y);
    const bool ncl_member = in_ncl(property, y, depth);
    const bool fcl_member = in_fcl(property, y, depth);
    if (member != ncl_member) result.existentially_safe = false;
    if (member != fcl_member) result.universally_safe = false;
    if (!ncl_member) result.existentially_live = false;
    if (!fcl_member) result.universally_live = false;
  }
  return result;
}

std::vector<KTree> total_tree_corpus(const Alphabet& alphabet, int max_nodes,
                                     int max_arity) {
  std::vector<KTree> corpus;
  std::map<std::string, bool> seen;
  for (int n = 1; n <= max_nodes; ++n) {
    for (KTree& tree : enumerate_regular_trees(alphabet, n, 1, max_arity)) {
      // arity ≥ 1 everywhere makes the tree total by construction.
      SLAT_ASSERT(tree.is_total());
      // Cheap canonical key (BFS shape of the reachable part); unfolding
      // duplicates that survive are harmless for classification.
      const std::string key = tree.unroll(0).to_string();
      bool duplicate = seen.count(key) != 0;
      if (!duplicate) {
        for (const KTree& existing : corpus) {
          if (existing.same_unfolding(tree)) {
            duplicate = true;
            break;
          }
        }
      }
      if (!duplicate) {
        seen[key] = true;
        corpus.push_back(std::move(tree));
      }
    }
  }
  return corpus;
}

}  // namespace slat::trees
