// Regular trees: finite rooted labeled graphs whose unfolding is the
// (possibly infinite) tree. This is the computable stand-in for the paper's
// arbitrary infinite trees (§4.1): Rabin-language facts are witnessed by
// regular trees, and membership of a regular tree is a finite game.
//
// Nodes may have any number of children (the paper's trees are prefix-closed
// subsets of ℕ*; sequences — unary trees — are important examples in §4.3).
// A node with no children is a leaf; a tree is TOTAL iff no reachable node
// is a leaf. Finite trees (all paths hit leaves) and non-total infinite
// trees (some leaf, some infinite path) both arise as prefixes.
#pragma once

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/memo_cache.hpp"
#include "words/alphabet.hpp"

namespace slat::trees {

using words::Alphabet;
using words::Sym;

/// A position in the unfolding: the sequence of child indices from the root.
using Position = std::vector<int>;

/// A regular tree (rooted labeled graph). Unreachable nodes are harmless.
class KTree {
 public:
  KTree(Alphabet alphabet, int num_nodes, int root);

  /// The regular tree with a single node labeled `s` and `arity` self-loop
  /// children: the constant tree s^∞ (arity ≥ 1), or the single-leaf tree
  /// (arity = 0).
  static KTree constant(Alphabet alphabet, Sym s, int arity);

  const Alphabet& alphabet() const { return alphabet_; }
  int num_nodes() const { return static_cast<int>(label_.size()); }
  int root() const { return root_; }

  Sym label(int node) const { return label_[node]; }
  void set_label(int node, Sym s);

  const std::vector<int>& children(int node) const { return children_[node]; }
  void add_child(int parent, int child);
  /// Removes all children, turning the node into a leaf.
  void make_leaf(int node);

  bool is_leaf(int node) const { return children_[node].empty(); }

  /// Appends a fresh leaf node labeled `s`; returns its id.
  int add_node(Sym s);

  /// Nodes reachable from the root.
  std::vector<bool> reachable() const;

  /// Total: every reachable node has at least one child.
  bool is_total() const;

  /// Finite-depth: no cycle is reachable (the unfolding has finitely many
  /// positions).
  bool is_finite() const;

  /// The node at a position of the unfolding, if the position exists.
  std::optional<int> node_at(const Position& position) const;

  /// All positions of the unfolding with depth < `depth` plus the frontier
  /// at exactly `depth` (i.e. positions of depth ≤ depth). Exponential in
  /// depth for branching trees.
  std::vector<Position> positions_up_to(int depth) const;

  /// An equivalent tree in which every position of depth < `depth` is its
  /// own node (so prefix surgery at those positions is node surgery), with
  /// deeper behavior shared with the original graph structure.
  KTree unroll(int depth) const;

  /// The finite-depth prefix of the unfolding: every position of depth
  /// < `depth` kept, everything at `depth` becomes a leaf.
  KTree truncate(int depth) const;

  /// The prefix obtained by turning the nodes at the given positions into
  /// leaves (the positions are cut in one pass, so an ancestor cut shadows
  /// a descendant cut).
  KTree prune_at(const std::vector<Position>& cuts) const;

  /// Structural equality of the underlying graphs after reachable-trim and
  /// canonical renumbering via BFS (sufficient for tests; unfolding
  /// equivalence is checked semantically via bisimulation).
  bool structurally_equal(const KTree& other) const;

  /// Unfolding equivalence: do the two trees unfold to the same labeled
  /// tree? Decided by checking "same children count, same labels" along a
  /// product BFS (the unfolding is deterministic given child order, so this
  /// is a functional bisimulation check).
  bool same_unfolding(const KTree& other) const;

  std::string to_string() const;

 private:
  Alphabet alphabet_;
  int root_;
  std::vector<Sym> label_;
  std::vector<std::vector<int>> children_;
};

/// 128-bit structural digest of the tree's GRAPH representation (alphabet
/// names, root, labels, child lists in stored order) — the content address
/// for the closure memo caches. Unfolding-equivalent but structurally
/// different graphs get different digests, which is safe (strictly fewer
/// cache hits, never a wrong one).
core::Digest fingerprint(const KTree& tree);

/// Every regular tree over `alphabet` with exactly `num_nodes` nodes, where
/// each node has between `min_arity` and `max_arity` children drawn from the
/// node set. All nodes are reachable-or-not as generated; callers typically
/// filter by is_total(). Exponential; meant for tiny parameters.
std::vector<KTree> enumerate_regular_trees(const Alphabet& alphabet, int num_nodes,
                                           int min_arity, int max_arity);

/// A uniformly random regular tree: `num_nodes` nodes, every node gets
/// exactly `arity` children drawn uniformly (so the tree is total), labels
/// uniform over the alphabet. For larger corpora than enumeration affords.
KTree random_regular_tree(const Alphabet& alphabet, int num_nodes, int arity,
                          std::mt19937& rng);

}  // namespace slat::trees
