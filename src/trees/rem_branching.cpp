#include "trees/rem_branching.hpp"

#include <deque>

#include "common/assert.hpp"

namespace slat::trees {

namespace {

constexpr Sym kA = 0;
constexpr Sym kB = 1;

std::vector<bool> reachable_from_root(const KTree& tree) { return tree.reachable(); }

// Nodes lying on a cycle of the subgraph induced by `allowed` — computed
// with a simple iterated pruning: repeatedly delete allowed nodes with no
// allowed successor still alive; survivors all lie on (or reach) cycles, and
// a node is ON a cycle iff it survives the "can reach itself" DFS. For the
// tiny graphs here we just run a per-node DFS.
bool node_on_cycle(const KTree& tree, int start, const std::vector<bool>& allowed) {
  // Can `start` reach itself in ≥ 1 step inside `allowed`?
  std::vector<bool> seen(tree.num_nodes(), false);
  std::deque<int> queue;
  for (int c : tree.children(start)) {
    if (allowed[c] && !seen[c]) {
      seen[c] = true;
      queue.push_back(c);
    }
  }
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    if (v == start) return true;
    for (int c : tree.children(v)) {
      if (allowed[c] && !seen[c]) {
        seen[c] = true;
        queue.push_back(c);
      }
    }
  }
  return seen[start];
}

// Does `from` reach (in ≥ 0 steps) a node satisfying `target`, moving only
// through `allowed` nodes? `from` itself must be allowed.
template <typename Pred>
bool reaches(const KTree& tree, int from, const std::vector<bool>& allowed,
             const Pred& target) {
  std::vector<bool> seen(tree.num_nodes(), false);
  std::deque<int> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    if (target(v)) return true;
    for (int c : tree.children(v)) {
      if (allowed[c] && !seen[c]) {
        seen[c] = true;
        queue.push_back(c);
      }
    }
  }
  return false;
}

}  // namespace

bool exists_monochrome_path(const KTree& tree, Sym s) {
  if (tree.label(tree.root()) != s) return false;
  std::vector<bool> allowed(tree.num_nodes(), false);
  for (int v = 0; v < tree.num_nodes(); ++v) allowed[v] = tree.label(v) == s;
  // Root must reach, within the s-subgraph, a node on an s-cycle.
  return reaches(tree, tree.root(), allowed, [&](int v) {
    return node_on_cycle(tree, v, allowed);
  });
}

bool exists_cycle_visiting(const KTree& tree, Sym s) {
  const auto reach = reachable_from_root(tree);
  std::vector<bool> allowed(tree.num_nodes(), false);
  for (int v = 0; v < tree.num_nodes(); ++v) allowed[v] = reach[v];
  for (int v = 0; v < tree.num_nodes(); ++v) {
    if (reach[v] && tree.label(v) == s && node_on_cycle(tree, v, allowed)) return true;
  }
  return false;
}

bool exists_monochrome_cycle(const KTree& tree, Sym s) {
  const auto reach = reachable_from_root(tree);
  std::vector<bool> allowed(tree.num_nodes(), false);
  for (int v = 0; v < tree.num_nodes(); ++v) {
    allowed[v] = reach[v] && tree.label(v) == s;
  }
  for (int v = 0; v < tree.num_nodes(); ++v) {
    if (allowed[v] && node_on_cycle(tree, v, allowed)) return true;
  }
  return false;
}

bool has_reachable_leaf(const KTree& tree) {
  const auto reach = reachable_from_root(tree);
  for (int v = 0; v < tree.num_nodes(); ++v) {
    if (reach[v] && tree.is_leaf(v)) return true;
  }
  return false;
}

bool reaches_label(const KTree& tree, Sym s) {
  const auto reach = reachable_from_root(tree);
  for (int v = 0; v < tree.num_nodes(); ++v) {
    if (reach[v] && tree.label(v) == s) return true;
  }
  return false;
}

std::vector<RemBranchingExample> rem_branching_examples() {
  std::vector<RemBranchingExample> out;

  const auto root_is = [](Sym s) {
    return [s](const KTree& t) { return t.label(t.root()) == s; };
  };

  // q0: false.
  out.push_back({"q0",
                 "false (the empty property)",
                 "false",
                 {"q0", [](const KTree&) { return false; }, [](const KTree&) { return false; }},
                 {true, true, false, false}});

  // q1: a.
  out.push_back({"q1",
                 "the root is labeled a",
                 "a",
                 {"q1", root_is(kA), root_is(kA)},
                 {true, true, false, false}});

  // q2: !a.
  out.push_back({"q2",
                 "the root is not labeled a",
                 "!a",
                 {"q2", root_is(kB), root_is(kB)},
                 {true, true, false, false}});

  // q3a: a & AF !a — along each path, eventually not-a. An extension can
  // fill every leaf with b^ω, so extendability only requires that no
  // infinite all-a path is already trapped in the prefix.
  {
    const auto oracle = [](const KTree& t) {
      return t.label(t.root()) == kA && !exists_monochrome_path(t, kA);
    };
    out.push_back({"q3a",
                   "root a, and along each path some node differs from a",
                   "a & AF !a",
                   {"q3a", oracle, oracle},
                   {false, false, false, false}});
  }

  // q3b: a & EF !a. Any leaf can be grown into a b-node, so prefixes are
  // extendable iff the root is a — hence ncl.q3b = fcl.q3b = q1.
  out.push_back({"q3b",
                 "root a, and along some path some node differs from a",
                 "a & EF !a",
                 {"q3b",
                  [](const KTree& t) { return t.label(t.root()) == kA && reaches_label(t, kB); },
                  [](const KTree& t) {
                    return t.label(t.root()) == kA &&
                           (reaches_label(t, kB) || has_reachable_leaf(t));
                  }},
                 {false, false, false, false}});

  // q4a: A FG !a — on every path, finitely many a's ⟺ no reachable cycle
  // visits an a-node. Extensions fill leaves with b^ω, so the oracle is the
  // same for prefixes.
  {
    const auto oracle = [](const KTree& t) { return !exists_cycle_visiting(t, kA); };
    out.push_back({"q4a",
                   "along each path, eventually all nodes differ from a",
                   "",  // CTL* only
                   {"q4a", oracle, oracle},
                   {false, false, false, true}});
  }

  // q4b: E FG !a — some path is eventually all-b ⟺ a reachable all-b cycle
  // exists; any leaf can be grown into b^ω.
  out.push_back({"q4b",
                 "along some path, eventually all nodes differ from a",
                 "",
                 {"q4b",
                  [](const KTree& t) { return exists_monochrome_cycle(t, kB); },
                  [](const KTree& t) {
                    return exists_monochrome_cycle(t, kB) || has_reachable_leaf(t);
                  }},
                 {false, false, true, true}});

  // q5a: A GF a — every path visits a infinitely often ⟺ no reachable
  // all-b cycle. Extensions fill leaves with a^ω.
  {
    const auto oracle = [](const KTree& t) { return !exists_monochrome_cycle(t, kB); };
    out.push_back({"q5a",
                   "along each path, infinitely many nodes are labeled a",
                   "",
                   {"q5a", oracle, oracle},
                   {false, false, false, true}});
  }

  // q5b: E GF a — some path visits a infinitely often ⟺ a reachable cycle
  // contains an a-node; any leaf can be grown into a^ω.
  out.push_back({"q5b",
                 "along some path, infinitely many nodes are labeled a",
                 "",
                 {"q5b",
                  [](const KTree& t) { return exists_cycle_visiting(t, kA); },
                  [](const KTree& t) {
                    return exists_cycle_visiting(t, kA) || has_reachable_leaf(t);
                  }},
                 {false, false, true, true}});

  // q6: true.
  out.push_back({"q6",
                 "true (every total tree)",
                 "true",
                 {"q6", [](const KTree&) { return true; }, [](const KTree&) { return true; }},
                 {true, true, true, true}});

  return out;
}

std::vector<KTree> paper_witness_trees() {
  const Alphabet alphabet = words::Alphabet::binary();
  std::vector<KTree> out;

  // Sequences a^ω and b^ω (unary chains) — "trees can be sequences".
  out.push_back(KTree::constant(alphabet, kA, 1));
  out.push_back(KTree::constant(alphabet, kB, 1));
  // Binary constant trees.
  out.push_back(KTree::constant(alphabet, kA, 2));
  out.push_back(KTree::constant(alphabet, kB, 2));
  // The §4.3 witness: a root with two paths, one all-a, the other switching
  // to b forever (so AF !a fails on the left path only).
  {
    KTree tree(alphabet, 3, 0);
    tree.set_label(0, kA);
    tree.set_label(1, kA);
    tree.set_label(2, kB);
    tree.add_child(0, 1);  // left: all-a path
    tree.add_child(0, 2);  // right: all-b path
    tree.add_child(1, 1);
    tree.add_child(2, 2);
    out.push_back(std::move(tree));
  }
  // A sequence a b^ω: in q3a/q3b but not constant.
  {
    KTree tree(alphabet, 2, 0);
    tree.set_label(0, kA);
    tree.set_label(1, kB);
    tree.add_child(0, 1);
    tree.add_child(1, 1);
    out.push_back(std::move(tree));
  }
  // Alternating (ab)^ω sequence: infinitely many a's AND infinitely many b's.
  {
    KTree tree(alphabet, 2, 0);
    tree.set_label(0, kA);
    tree.set_label(1, kB);
    tree.add_child(0, 1);
    tree.add_child(1, 0);
    out.push_back(std::move(tree));
  }
  return out;
}

}  // namespace slat::trees
