#include "trees/ktree.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "common/assert.hpp"

namespace slat::trees {

KTree::KTree(Alphabet alphabet, int num_nodes, int root)
    : alphabet_(std::move(alphabet)), root_(root) {
  SLAT_ASSERT(num_nodes >= 1);
  SLAT_ASSERT(root >= 0 && root < num_nodes);
  label_.assign(num_nodes, 0);
  children_.assign(num_nodes, {});
}

KTree KTree::constant(Alphabet alphabet, Sym s, int arity) {
  SLAT_ASSERT(arity >= 0);
  KTree tree(std::move(alphabet), 1, 0);
  tree.set_label(0, s);
  for (int i = 0; i < arity; ++i) tree.add_child(0, 0);
  return tree;
}

void KTree::set_label(int node, Sym s) {
  SLAT_ASSERT(node >= 0 && node < num_nodes());
  SLAT_ASSERT(s >= 0 && s < alphabet_.size());
  label_[node] = s;
}

void KTree::add_child(int parent, int child) {
  SLAT_ASSERT(parent >= 0 && parent < num_nodes());
  SLAT_ASSERT(child >= 0 && child < num_nodes());
  children_[parent].push_back(child);
}

void KTree::make_leaf(int node) {
  SLAT_ASSERT(node >= 0 && node < num_nodes());
  children_[node].clear();
}

int KTree::add_node(Sym s) {
  label_.push_back(s);
  children_.emplace_back();
  SLAT_ASSERT(s >= 0 && s < alphabet_.size());
  return num_nodes() - 1;
}

std::vector<bool> KTree::reachable() const {
  std::vector<bool> seen(num_nodes(), false);
  std::deque<int> queue{root_};
  seen[root_] = true;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (int c : children_[v]) {
      if (!seen[c]) {
        seen[c] = true;
        queue.push_back(c);
      }
    }
  }
  return seen;
}

bool KTree::is_total() const {
  const auto seen = reachable();
  for (int v = 0; v < num_nodes(); ++v) {
    if (seen[v] && children_[v].empty()) return false;
  }
  return true;
}

bool KTree::is_finite() const {
  // Finite unfolding iff the reachable subgraph is acyclic: DFS with colors.
  const int n = num_nodes();
  std::vector<int> color(n, 0);  // 0 = white, 1 = on stack, 2 = done
  std::vector<std::pair<int, std::size_t>> stack{{root_, 0}};
  color[root_] = 1;
  while (!stack.empty()) {
    auto& [v, next] = stack.back();
    if (next < children_[v].size()) {
      const int c = children_[v][next++];
      if (color[c] == 1) return false;
      if (color[c] == 0) {
        color[c] = 1;
        stack.emplace_back(c, 0);
      }
    } else {
      color[v] = 2;
      stack.pop_back();
    }
  }
  return true;
}

std::optional<int> KTree::node_at(const Position& position) const {
  int v = root_;
  for (int dir : position) {
    if (dir < 0 || dir >= static_cast<int>(children_[v].size())) return std::nullopt;
    v = children_[v][dir];
  }
  return v;
}

std::vector<Position> KTree::positions_up_to(int depth) const {
  std::vector<Position> out{{}};
  std::vector<Position> frontier{{}};
  for (int d = 0; d < depth; ++d) {
    std::vector<Position> next;
    for (const Position& pos : frontier) {
      const int v = *node_at(pos);
      for (int dir = 0; dir < static_cast<int>(children_[v].size()); ++dir) {
        Position child = pos;
        child.push_back(dir);
        out.push_back(child);
        next.push_back(std::move(child));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

KTree KTree::unroll(int depth) const {
  SLAT_ASSERT(depth >= 0);
  // New nodes: one per position of depth < depth ("unrolled" region), plus a
  // copy of every original node for the shared remainder.
  KTree out(alphabet_, 1, 0);
  out.set_label(0, label_[root_]);
  // The copies of the original nodes live at offset `base`.
  struct PendingEntry {
    int out_node;
    int orig_node;
    int remaining_depth;
  };
  std::vector<PendingEntry> worklist{{0, root_, depth}};
  std::map<int, int> shared;  // original node -> shared copy in `out`
  const auto shared_copy = [&](int orig) {
    auto it = shared.find(orig);
    if (it == shared.end()) {
      const int id = out.add_node(label_[orig]);
      it = shared.emplace(orig, id).first;
      worklist.push_back({id, orig, 0});
    }
    return it->second;
  };
  for (std::size_t head = 0; head < worklist.size(); ++head) {
    const PendingEntry entry = worklist[head];
    if (!out.children(entry.out_node).empty()) continue;  // shared node done
    for (int child : children_[entry.orig_node]) {
      if (entry.remaining_depth > 1) {
        const int fresh = out.add_node(label_[child]);
        out.add_child(entry.out_node, fresh);
        worklist.push_back({fresh, child, entry.remaining_depth - 1});
      } else {
        out.add_child(entry.out_node, shared_copy(child));
      }
    }
  }
  return out;
}

KTree KTree::truncate(int depth) const {
  SLAT_ASSERT(depth >= 0);
  KTree out(alphabet_, 1, 0);
  out.set_label(0, label_[root_]);
  struct PendingEntry {
    int out_node;
    int orig_node;
    int remaining_depth;
  };
  std::vector<PendingEntry> worklist{{0, root_, depth}};
  for (std::size_t head = 0; head < worklist.size(); ++head) {
    const PendingEntry entry = worklist[head];
    if (entry.remaining_depth == 0) continue;  // becomes a leaf
    for (int child : children_[entry.orig_node]) {
      const int fresh = out.add_node(label_[child]);
      out.add_child(entry.out_node, fresh);
      worklist.push_back({fresh, child, entry.remaining_depth - 1});
    }
  }
  return out;
}

KTree KTree::prune_at(const std::vector<Position>& cuts) const {
  int max_depth = 0;
  for (const Position& cut : cuts) {
    max_depth = std::max(max_depth, static_cast<int>(cut.size()));
  }
  KTree out = unroll(max_depth + 1);
  for (const Position& cut : cuts) {
    const auto node = out.node_at(cut);
    SLAT_ASSERT_MSG(node.has_value(), "cut position must exist in the tree");
    out.make_leaf(*node);
  }
  return out;
}

bool KTree::structurally_equal(const KTree& other) const {
  // Canonical BFS numbering of the reachable part, then direct comparison.
  const auto canonical = [](const KTree& tree) {
    std::vector<int> order;
    std::vector<int> id(tree.num_nodes(), -1);
    order.push_back(tree.root());
    id[tree.root()] = 0;
    for (std::size_t head = 0; head < order.size(); ++head) {
      for (int c : tree.children(order[head])) {
        if (id[c] == -1) {
          id[c] = static_cast<int>(order.size());
          order.push_back(c);
        }
      }
    }
    std::vector<std::pair<Sym, std::vector<int>>> shape;
    for (int v : order) {
      std::vector<int> kids;
      for (int c : tree.children(v)) kids.push_back(id[c]);
      shape.emplace_back(tree.label(v), std::move(kids));
    }
    return shape;
  };
  return alphabet_ == other.alphabet_ && canonical(*this) == canonical(other);
}

bool KTree::same_unfolding(const KTree& other) const {
  if (!(alphabet_ == other.alphabet_)) return false;
  // The unfolding is determined by (label, ordered child list) along
  // positions, so "same unfolding" is a product reachability check.
  std::map<std::pair<int, int>, bool> visited;
  std::deque<std::pair<int, int>> queue{{root_, other.root_}};
  visited[{root_, other.root_}] = true;
  while (!queue.empty()) {
    const auto [v, w] = queue.front();
    queue.pop_front();
    if (label_[v] != other.label_[w]) return false;
    if (children_[v].size() != other.children_[w].size()) return false;
    for (std::size_t i = 0; i < children_[v].size(); ++i) {
      const auto key = std::make_pair(children_[v][i], other.children_[w][i]);
      if (!visited[key]) {
        visited[key] = true;
        queue.push_back(key);
      }
    }
  }
  return true;
}

std::string KTree::to_string() const {
  std::ostringstream out;
  out << "KTree root=" << root_ << "\n";
  for (int v = 0; v < num_nodes(); ++v) {
    out << "  " << v << " [" << alphabet_.name(label_[v]) << "] -> (";
    for (std::size_t i = 0; i < children_[v].size(); ++i) {
      if (i > 0) out << ", ";
      out << children_[v][i];
    }
    out << ")\n";
  }
  return out.str();
}

core::Digest fingerprint(const KTree& tree) {
  core::DigestBuilder b;
  b.add_string("trees.ktree");
  const Alphabet& alphabet = tree.alphabet();
  b.add_int(alphabet.size());
  for (Sym s = 0; s < alphabet.size(); ++s) b.add_string(alphabet.name(s));
  b.add_int(tree.num_nodes()).add_int(tree.root());
  for (int v = 0; v < tree.num_nodes(); ++v) {
    b.add_int(tree.label(v)).add_ints(tree.children(v));
  }
  return b.digest();
}

std::vector<KTree> enumerate_regular_trees(const Alphabet& alphabet, int num_nodes,
                                           int min_arity, int max_arity) {
  SLAT_ASSERT(num_nodes >= 1 && min_arity >= 0 && max_arity >= min_arity);
  std::vector<KTree> out;
  // Enumerate labelings × per-node child lists. Child lists are ordered
  // tuples over the node set with length in [min_arity, max_arity].
  std::vector<std::vector<int>> all_child_lists;
  for (int len = min_arity; len <= max_arity; ++len) {
    std::vector<int> tuple(len, 0);
    while (true) {
      all_child_lists.push_back(tuple);
      int pos = len - 1;
      while (pos >= 0 && tuple[pos] == num_nodes - 1) tuple[pos--] = 0;
      if (pos < 0) break;
      ++tuple[pos];
    }
    if (len == 0) continue;  // the empty tuple enumerates once above
  }

  const int num_lists = static_cast<int>(all_child_lists.size());
  std::vector<int> label(num_nodes, 0), list_of(num_nodes, 0);
  while (true) {
    KTree tree(alphabet, num_nodes, 0);
    for (int v = 0; v < num_nodes; ++v) {
      tree.set_label(v, label[v]);
      for (int c : all_child_lists[list_of[v]]) tree.add_child(v, c);
    }
    out.push_back(std::move(tree));

    // Advance the mixed-radix counter (labels, then child-list choices).
    int pos = 0;
    for (; pos < num_nodes; ++pos) {
      if (++label[pos] < alphabet.size()) break;
      label[pos] = 0;
    }
    if (pos < num_nodes) continue;
    for (pos = 0; pos < num_nodes; ++pos) {
      if (++list_of[pos] < num_lists) break;
      list_of[pos] = 0;
    }
    if (pos == num_nodes) break;
  }
  return out;
}

KTree random_regular_tree(const Alphabet& alphabet, int num_nodes, int arity,
                          std::mt19937& rng) {
  SLAT_ASSERT(num_nodes >= 1 && arity >= 1);
  KTree tree(alphabet, num_nodes, 0);
  std::uniform_int_distribution<int> pick_label(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> pick_node(0, num_nodes - 1);
  for (int v = 0; v < num_nodes; ++v) {
    tree.set_label(v, pick_label(rng));
    for (int i = 0; i < arity; ++i) tree.add_child(v, pick_node(rng));
  }
  SLAT_ASSERT(tree.is_total());
  return tree;
}

}  // namespace slat::trees
