// Büchi games: player 0 wins iff the play visits a target node infinitely
// often. A special case of parity games (priorities {1, 2}), solved here
// directly by the classical nested-attractor ("recurrence") algorithm —
// quadratic, simpler, and a useful cross-check and fast path for the tree
// procedures whose acceptance is a single green set (e.g. everything the
// rfcl closure produces).
#pragma once

#include <vector>

#include "games/parity.hpp"

namespace slat::games {

/// Arena + target set; the game must be total.
struct BuchiGame {
  std::vector<Player> owner;
  std::vector<bool> target;
  std::vector<std::vector<int>> successors;

  int num_nodes() const { return static_cast<int>(owner.size()); }

  int add_node(Player player, bool is_target) {
    owner.push_back(player);
    target.push_back(is_target);
    successors.emplace_back();
    return num_nodes() - 1;
  }

  void add_edge(int from, int to) {
    SLAT_ASSERT(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes());
    successors[from].push_back(to);
  }

  bool is_total() const {
    for (const auto& succ : successors) {
      if (succ.empty()) return false;
    }
    return true;
  }

  /// The equivalent max-parity game (targets get priority 2, others 1).
  ParityGame to_parity() const;
};

/// Winning regions via the recurrence construction: iteratively shrink the
/// target set to the recurrent part (targets from which player 0 can
/// re-reach a surviving target), then attract.
std::vector<Player> solve_buchi(const BuchiGame& game);

}  // namespace slat::games
