#include "games/rabin_game.hpp"

#include <algorithm>
#include <numeric>

#include "core/parallel.hpp"
#include "core/state_set.hpp"

namespace slat::games {

namespace {

// Interning key for IAR expansion nodes: (Rabin node, index appearance
// record) tuples.
struct IarKey {
  int node;
  std::vector<int> record;

  std::uint64_t hash() const {
    return core::hash_ints(record.data(), record.size(),
                           core::hash_combine(core::kHashSeed,
                                              static_cast<std::uint64_t>(node)));
  }

  friend bool operator==(const IarKey&, const IarKey&) = default;
};

// Record update: move the indices hit red at this node to the front,
// preserving relative order within both groups.
std::vector<int> update_record(const std::vector<int>& record, std::uint32_t red) {
  std::vector<int> next;
  next.reserve(record.size());
  for (int i : record) {
    if (red >> i & 1u) next.push_back(i);
  }
  for (int i : record) {
    if (!(red >> i & 1u)) next.push_back(i);
  }
  return next;
}

// Priority of visiting a node carrying `marks` while holding `record`
// (positions 1-based from the front; neutral steps get the odd baseline 1).
int iar_priority(const std::vector<int>& record, RabinMarks marks) {
  int priority = 1;
  for (std::size_t pos = 0; pos < record.size(); ++pos) {
    const int i = record[pos];
    const int position = static_cast<int>(pos) + 1;
    if (marks.green >> i & 1u) priority = std::max(priority, 2 * position);
    if (marks.red >> i & 1u) priority = std::max(priority, 2 * position + 1);
  }
  return priority;
}

}  // namespace

IarExpansion expand_iar(const RabinGame& game) {
  SLAT_ASSERT_MSG(game.is_total(), "Rabin games must be total");
  IarExpansion out;
  const int n = game.num_nodes();
  out.initial_node.assign(n, -1);

  core::InternTable<IarKey> intern;
  intern.reserve(2 * n);  // every Rabin node seeds one record; successors add more
  const auto intern_node = [&](int v, const std::vector<int>& record) {
    bool created = false;
    const int id = intern.intern(IarKey{v, record}, &created);
    if (created) {
      const int node = out.parity.add_node(game.owner[v], iar_priority(record, game.marks[v]));
      SLAT_ASSERT(node == id);  // both sides number nodes in discovery order
      out.rabin_node.push_back(v);
      out.record.push_back(record);
    }
    return id;
  };

  std::vector<int> identity(game.num_pairs);
  std::iota(identity.begin(), identity.end(), 0);

  for (int v = 0; v < n; ++v) {
    out.initial_node[v] = intern_node(v, identity);
  }

  // Level-synchronous expansion: ids are interned in increasing order, so
  // the FIFO worklist of the sequential construction is exactly the id
  // sequence 0, 1, 2, ... Each level's record updates (pure functions of the
  // level's nodes) run in parallel; successors are then interned
  // sequentially in (id, edge) order, reproducing the sequential numbering
  // and edge order bit-for-bit at any thread count.
  std::vector<std::vector<int>> next_records;
  for (int level_begin = 0; level_begin < out.parity.num_nodes();) {
    const int level_end = out.parity.num_nodes();
    const int frontier = level_end - level_begin;
    next_records.assign(frontier, {});
    core::parallel_for(frontier, [&](int i) {
      const int id = level_begin + i;
      next_records[i] = update_record(out.record[id], game.marks[out.rabin_node[id]].red);
    });
    for (int id = level_begin; id < level_end; ++id) {
      const std::vector<int>& next_record = next_records[id - level_begin];
      for (int w : game.successors[out.rabin_node[id]]) {
        out.parity.add_edge(id, intern_node(w, next_record));
      }
    }
    level_begin = level_end;
  }
  return out;
}

RabinSolution solve_rabin(const RabinGame& game) {
  RabinSolution solution;
  solution.expansion = expand_iar(game);
  solution.parity_solution = solve(solution.expansion.parity);
  solution.winner.assign(game.num_nodes(), -1);
  for (int v = 0; v < game.num_nodes(); ++v) {
    const int node = solution.expansion.initial_node[v];
    SLAT_ASSERT(node >= 0);
    solution.winner[v] = solution.parity_solution.winner[node];
  }
  return solution;
}

namespace {

// Is the subgraph induced by `nodes` (a sorted list) strongly connected and
// non-empty, using only edges of `graph` between members? A closed walk
// visiting exactly `nodes` exists iff so.
bool induces_strongly_connected(const std::vector<std::vector<int>>& graph,
                                const std::vector<int>& nodes) {
  if (nodes.empty()) return false;
  const auto member = [&](int v) {
    return std::binary_search(nodes.begin(), nodes.end(), v);
  };
  // A closed walk needs every member to have a successor inside the set;
  // in particular a singleton only qualifies with a self-loop.
  for (int v : nodes) {
    bool has_inner_successor = false;
    for (int w : graph[v]) {
      if (member(w)) {
        has_inner_successor = true;
        break;
      }
    }
    if (!has_inner_successor) return false;
  }
  // Forward reachability within the set, from nodes[0]; then the same on
  // the transposed edges. SC iff both cover the whole set.
  for (int direction = 0; direction < 2; ++direction) {
    std::vector<int> stack{nodes[0]};
    core::StateSet seen(static_cast<int>(graph.size()));
    seen.insert(nodes[0]);
    std::size_t count = 1;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (std::size_t u = 0; u < graph.size(); ++u) {
        // direction 0: edges v -> w; direction 1: edges w -> v.
        if (direction == 0 && u != static_cast<std::size_t>(v)) continue;
        for (int w : graph[u]) {
          int from = static_cast<int>(u), to = w;
          if (direction == 1) std::swap(from, to);
          if (from != v) continue;
          if (member(to) && !seen.contains(to)) {
            seen.insert(to);
            ++count;
            stack.push_back(to);
          }
        }
      }
    }
    if (count != nodes.size()) return false;
  }
  return true;
}

// Does the cycle support `nodes` violate the Rabin condition for every pair?
bool is_bad_support(const RabinGame& game, const std::vector<int>& nodes) {
  for (int i = 0; i < game.num_pairs; ++i) {
    bool hits_green = false, hits_red = false;
    for (int v : nodes) {
      if (game.marks[v].green >> i & 1u) hits_green = true;
      if (game.marks[v].red >> i & 1u) hits_red = true;
    }
    if (hits_green && !hits_red) return false;  // pair i is satisfied
  }
  return true;
}

}  // namespace

std::vector<Player> solve_rabin_brute_force(const RabinGame& game) {
  SLAT_ASSERT_MSG(game.is_total(), "Rabin games must be total");
  const int n = game.num_nodes();
  SLAT_ASSERT_MSG(n <= 12, "brute-force Rabin solver is exponential");

  std::vector<int> p0_nodes;
  for (int v = 0; v < n; ++v) {
    if (game.owner[v] == 0) p0_nodes.push_back(v);
  }

  std::vector<Player> winner(n, 1);  // pessimistic: player 1 until refuted

  std::vector<int> choice(p0_nodes.size(), 0);
  while (true) {
    // Build the strategy-restricted graph.
    std::vector<std::vector<int>> graph(n);
    for (int v = 0; v < n; ++v) {
      if (game.owner[v] == 1) {
        graph[v] = game.successors[v];
      }
    }
    for (std::size_t i = 0; i < p0_nodes.size(); ++i) {
      const int v = p0_nodes[i];
      graph[v] = {game.successors[v][choice[i]]};
    }

    // Nodes participating in some bad cycle support.
    std::vector<bool> in_bad(n, false);
    const std::uint32_t limit = 1u << n;
    for (std::uint32_t mask = 1; mask < limit; ++mask) {
      std::vector<int> nodes;
      for (int v = 0; v < n; ++v) {
        if (mask >> v & 1u) nodes.push_back(v);
      }
      if (!is_bad_support(game, nodes)) continue;
      if (!induces_strongly_connected(graph, nodes)) continue;
      for (int v : nodes) in_bad[v] = true;
    }

    // Player 0 wins from v under this strategy iff no bad node is reachable.
    for (int v = 0; v < n; ++v) {
      if (winner[v] == 0) continue;
      std::vector<bool> seen(n, false);
      std::vector<int> stack{v};
      seen[v] = true;
      bool reaches_bad = false;
      while (!stack.empty() && !reaches_bad) {
        const int u = stack.back();
        stack.pop_back();
        if (in_bad[u]) {
          reaches_bad = true;
          break;
        }
        for (int w : graph[u]) {
          if (!seen[w]) {
            seen[w] = true;
            stack.push_back(w);
          }
        }
      }
      if (!reaches_bad) winner[v] = 0;
    }

    // Next strategy combination.
    std::size_t pos = 0;
    while (pos < p0_nodes.size()) {
      if (++choice[pos] < static_cast<int>(game.successors[p0_nodes[pos]].size())) break;
      choice[pos] = 0;
      ++pos;
    }
    if (pos == p0_nodes.size()) break;
  }
  return winner;
}

}  // namespace slat::games
