// Games with a Rabin winning condition, solved by translation to parity
// games via index appearance records (IAR).
//
// Player 0 wins a play iff for SOME pair i the play visits green_i
// infinitely often and red_i only finitely often — exactly the acceptance
// condition of Rabin tree automata (§4.4), with player 0 in the role of
// "Automaton" and player 1 as "Pathfinder".
//
// The IAR memory is a permutation of the pair indices; on every step the
// pairs whose red set was just hit move to the front. Indices that are
// eventually never red settle at the back, so a green hit deep in the
// permutation (even priority 2·pos) eventually dominates every red hit
// (odd priority 2·pos+1) iff some pair is infinitely-green and
// finitely-red. Rabin games are positionally determined for player 0, and
// the parity strategy projects to a |pairs|!-memory strategy for player 1.
#pragma once

#include <cstdint>
#include <vector>

#include "games/parity.hpp"

namespace slat::games {

/// Rabin pair membership flags for one arena node.
struct RabinMarks {
  std::uint32_t green = 0;  ///< bit i: node ∈ green_i
  std::uint32_t red = 0;    ///< bit i: node ∈ red_i
};

struct RabinGame {
  std::vector<Player> owner;
  std::vector<RabinMarks> marks;
  std::vector<std::vector<int>> successors;
  int num_pairs = 0;

  int num_nodes() const { return static_cast<int>(owner.size()); }

  int add_node(Player player, RabinMarks node_marks = {}) {
    owner.push_back(player);
    marks.push_back(node_marks);
    successors.emplace_back();
    return num_nodes() - 1;
  }

  void add_edge(int from, int to) {
    SLAT_ASSERT(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes());
    successors[from].push_back(to);
  }

  bool is_total() const {
    for (const auto& succ : successors) {
      if (succ.empty()) return false;
    }
    return true;
  }
};

/// The expanded parity game plus the bookkeeping needed to read strategies
/// back. Parity node = (rabin node, permutation), interned on the fly from
/// the initial permutation (identity); only reachable records are built.
struct IarExpansion {
  ParityGame parity;
  /// For each parity node: the underlying Rabin node.
  std::vector<int> rabin_node;
  /// For each parity node: the permutation (pair indices, front first).
  std::vector<std::vector<int>> record;
  /// Parity node for (rabin node, identity permutation), -1 if unreachable
  /// from the seeds given to expand().
  std::vector<int> initial_node;
};

/// Expands the Rabin game into a parity game, exploring from every Rabin
/// node with the identity record (so `initial_node` is total).
IarExpansion expand_iar(const RabinGame& game);

struct RabinSolution {
  /// winner[v]: winner of Rabin node v (play starting with identity record).
  std::vector<Player> winner;
  IarExpansion expansion;
  ParitySolution parity_solution;
};

/// Solves the Rabin game for every node. Requires totality.
RabinSolution solve_rabin(const RabinGame& game);

/// Exhaustive reference solver for tiny games (≤ ~8 nodes): enumerates
/// player-0 positional strategies and checks every reachable cycle
/// structure. Used to validate the IAR pipeline in tests; exponential.
std::vector<Player> solve_rabin_brute_force(const RabinGame& game);

}  // namespace slat::games
