#include "games/buchi_game.hpp"

namespace slat::games {

ParityGame BuchiGame::to_parity() const {
  ParityGame parity;
  for (int v = 0; v < num_nodes(); ++v) parity.add_node(owner[v], target[v] ? 2 : 1);
  for (int v = 0; v < num_nodes(); ++v) {
    for (int w : successors[v]) parity.add_edge(v, w);
  }
  return parity;
}

std::vector<Player> solve_buchi(const BuchiGame& game) {
  SLAT_ASSERT_MSG(game.is_total(), "Büchi games must be total");
  const int n = game.num_nodes();
  const ParityGame arena = game.to_parity();  // reuse the attractor machinery

  // Classical nested-attractor loop. Invariant: everything outside `active`
  // has been decided for player 1; the active part is a subgame player 1
  // cannot leave without entering their own winning region.
  //
  // Each round: if player 1 can avoid the targets forever somewhere
  // (`escape` non-empty), that region plus its player-1 attractor is
  // player-1 winning and is removed. Otherwise player 0 forces a target
  // visit from everywhere; after each visit the play takes a step and stays
  // active, whence another visit is forced — infinitely many in total.
  std::vector<bool> active(n, true);
  std::vector<Player> winner(n, 0);
  while (true) {
    std::vector<bool> targets(n, false);
    bool any_target = false;
    for (int v = 0; v < n; ++v) {
      targets[v] = active[v] && game.target[v];
      any_target = any_target || targets[v];
    }
    if (!any_target) {
      for (int v = 0; v < n; ++v) {
        if (active[v]) winner[v] = 1;
      }
      return winner;
    }
    const std::vector<bool> reach = attractor(arena, 0, active, targets, nullptr);
    std::vector<bool> escape(n, false);
    bool any_escape = false;
    for (int v = 0; v < n; ++v) {
      escape[v] = active[v] && !reach[v];
      any_escape = any_escape || escape[v];
    }
    if (!any_escape) {
      for (int v = 0; v < n; ++v) {
        if (active[v]) winner[v] = 0;
      }
      return winner;
    }
    const std::vector<bool> lose = attractor(arena, 1, active, escape, nullptr);
    for (int v = 0; v < n; ++v) {
      if (lose[v]) {
        winner[v] = 1;
        active[v] = false;
      }
    }
  }
}

}  // namespace slat::games
