#include "games/buchi_game.hpp"

#include <algorithm>

#include "core/parallel.hpp"

namespace slat::games {

ParityGame BuchiGame::to_parity() const {
  ParityGame parity;
  for (int v = 0; v < num_nodes(); ++v) parity.add_node(owner[v], target[v] ? 2 : 1);
  for (int v = 0; v < num_nodes(); ++v) {
    for (int w : successors[v]) parity.add_edge(v, w);
  }
  return parity;
}

std::vector<Player> solve_buchi(const BuchiGame& game) {
  SLAT_ASSERT_MSG(game.is_total(), "Büchi games must be total");
  const int n = game.num_nodes();
  const ParityGame arena = game.to_parity();  // reuse the attractor machinery

  // Classical nested-attractor loop. Invariant: everything outside `active`
  // has been decided for player 1; the active part is a subgame player 1
  // cannot leave without entering their own winning region.
  //
  // Each round: if player 1 can avoid the targets forever somewhere
  // (`escape` non-empty), that region plus its player-1 attractor is
  // player-1 winning and is removed. Otherwise player 0 forces a target
  // visit from everywhere; after each visit the play takes a step and stays
  // active, whence another visit is forced — infinitely many in total.
  // The per-round partition scans below run in parallel over node ranges
  // into a byte-per-node scratch buffer (vector<bool> bit proxies are not
  // safe to write concurrently); each scan only reads the previous round's
  // state, so rounds stay deterministic. The attractor calls are themselves
  // parallel round-based fixpoints (see parity.cpp).
  std::vector<bool> active(n, true);
  std::vector<Player> winner(n, 0);
  std::vector<char> flags(n);
  while (true) {
    core::parallel_for(
        n, [&](int v) { flags[v] = active[v] && game.target[v]; }, /*grain=*/1024);
    const std::vector<bool> targets(flags.begin(), flags.end());
    if (std::find(flags.begin(), flags.end(), char(1)) == flags.end()) {
      for (int v = 0; v < n; ++v) {
        if (active[v]) winner[v] = 1;
      }
      return winner;
    }
    const std::vector<bool> reach = attractor(arena, 0, active, targets, nullptr);
    core::parallel_for(
        n, [&](int v) { flags[v] = active[v] && !reach[v]; }, /*grain=*/1024);
    const std::vector<bool> escape(flags.begin(), flags.end());
    if (std::find(flags.begin(), flags.end(), char(1)) == flags.end()) {
      for (int v = 0; v < n; ++v) {
        if (active[v]) winner[v] = 0;
      }
      return winner;
    }
    const std::vector<bool> lose = attractor(arena, 1, active, escape, nullptr);
    for (int v = 0; v < n; ++v) {
      if (lose[v]) {
        winner[v] = 1;
        active[v] = false;
      }
    }
  }
}

}  // namespace slat::games
