#include "games/parity.hpp"

#include <algorithm>
#include <deque>

namespace slat::games {

std::vector<bool> attractor(const ParityGame& game, Player player,
                            const std::vector<bool>& active,
                            const std::vector<bool>& target,
                            std::vector<int>* strategy_out) {
  const int n = game.num_nodes();
  // Predecessor lists restricted to active nodes, plus out-degree counters
  // for the opponent's forced moves.
  std::vector<std::vector<int>> predecessors(n);
  std::vector<int> out_degree(n, 0);
  for (int v = 0; v < n; ++v) {
    if (!active[v]) continue;
    for (int w : game.successors[v]) {
      if (!active[w]) continue;
      predecessors[w].push_back(v);
      ++out_degree[v];
    }
  }

  std::vector<bool> attracted(n, false);
  std::deque<int> queue;
  for (int v = 0; v < n; ++v) {
    if (active[v] && target[v]) {
      attracted[v] = true;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const int w = queue.front();
    queue.pop_front();
    for (int v : predecessors[w]) {
      if (attracted[v]) continue;
      if (game.owner[v] == player) {
        attracted[v] = true;
        if (strategy_out != nullptr) (*strategy_out)[v] = w;
        queue.push_back(v);
      } else {
        // Opponent node: attracted once every active successor is.
        if (--out_degree[v] == 0) {
          attracted[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return attracted;
}

namespace {

// Zielonka on the subgame induced by `active`. Writes winners/strategies for
// active nodes only.
void zielonka(const ParityGame& game, std::vector<bool> active,
              std::vector<Player>& winner, std::vector<int>& strategy) {
  const int n = game.num_nodes();
  int max_priority = -1;
  for (int v = 0; v < n; ++v) {
    if (active[v]) max_priority = std::max(max_priority, game.priority[v]);
  }
  if (max_priority < 0) return;  // empty subgame

  const Player favored = max_priority % 2;
  std::vector<bool> top(n, false);
  for (int v = 0; v < n; ++v) {
    top[v] = active[v] && game.priority[v] == max_priority;
  }

  std::vector<int> attract_strategy(n, -1);
  const std::vector<bool> region_a =
      attractor(game, favored, active, top, &attract_strategy);

  // Recurse on G \ A.
  std::vector<bool> rest = active;
  for (int v = 0; v < n; ++v) {
    if (region_a[v]) rest[v] = false;
  }
  std::vector<Player> sub_winner(n, -1);
  std::vector<int> sub_strategy(n, -1);
  zielonka(game, rest, sub_winner, sub_strategy);

  bool opponent_wins_somewhere = false;
  for (int v = 0; v < n; ++v) {
    if (rest[v] && sub_winner[v] == 1 - favored) {
      opponent_wins_somewhere = true;
      break;
    }
  }

  if (!opponent_wins_somewhere) {
    // `favored` wins the whole subgame: in the sub-subgame play the
    // recursive strategy; in A \ top attract toward top; on top pick any
    // active successor (revisiting max_priority forever is fine, and if the
    // play drifts back into `rest`, the recursive strategy takes over).
    for (int v = 0; v < n; ++v) {
      if (!active[v]) continue;
      winner[v] = favored;
      if (game.owner[v] != favored) {
        strategy[v] = -1;
        continue;
      }
      if (rest[v]) {
        strategy[v] = sub_strategy[v];
      } else if (!top[v] && attract_strategy[v] != -1) {
        strategy[v] = attract_strategy[v];
      } else {
        // A top node (or a target hit directly): any active successor.
        strategy[v] = -1;
        for (int w : game.successors[v]) {
          if (active[w]) {
            strategy[v] = w;
            break;
          }
        }
        SLAT_ASSERT_MSG(strategy[v] != -1, "total subgame node lost all successors");
      }
    }
    return;
  }

  // The opponent wins part of G \ A; their full winning region includes its
  // attractor. Recurse on the remainder.
  std::vector<bool> opponent_region(n, false);
  for (int v = 0; v < n; ++v) {
    opponent_region[v] = rest[v] && sub_winner[v] == 1 - favored;
  }
  std::vector<int> opp_attract_strategy(n, -1);
  const std::vector<bool> region_b =
      attractor(game, 1 - favored, active, opponent_region, &opp_attract_strategy);

  std::vector<bool> remainder = active;
  for (int v = 0; v < n; ++v) {
    if (region_b[v]) remainder[v] = false;
  }
  std::vector<Player> rem_winner(n, -1);
  std::vector<int> rem_strategy(n, -1);
  zielonka(game, remainder, rem_winner, rem_strategy);

  for (int v = 0; v < n; ++v) {
    if (!active[v]) continue;
    if (region_b[v]) {
      winner[v] = 1 - favored;
      if (game.owner[v] == 1 - favored) {
        if (opponent_region[v]) {
          strategy[v] = sub_strategy[v];
        } else {
          strategy[v] = opp_attract_strategy[v];
          SLAT_ASSERT(strategy[v] != -1);
        }
      } else {
        strategy[v] = -1;
      }
    } else {
      winner[v] = rem_winner[v];
      strategy[v] = game.owner[v] == rem_winner[v] ? rem_strategy[v] : -1;
    }
  }
}

}  // namespace

ParitySolution solve(const ParityGame& game) {
  SLAT_ASSERT_MSG(game.is_total(), "parity games must be total");
  const int n = game.num_nodes();
  ParitySolution solution;
  solution.winner.assign(n, -1);
  solution.strategy.assign(n, -1);
  std::vector<bool> active(n, true);
  zielonka(game, std::move(active), solution.winner, solution.strategy);
  return solution;
}

}  // namespace slat::games
