#include "games/parity.hpp"

#include <algorithm>

#include "core/parallel.hpp"

namespace slat::games {

std::vector<bool> attractor(const ParityGame& game, Player player,
                            const std::vector<bool>& active,
                            const std::vector<bool>& target,
                            std::vector<int>* strategy_out) {
  // Level-synchronous backward fixpoint. Each round gathers the candidate
  // nodes (inactive-free predecessors of the last frontier, in frontier
  // order) and evaluates the attraction rule for all of them IN PARALLEL
  // against the previous round's attracted set — the parallel phase only
  // reads, so the round is a pure function of the prior state and the result
  // is bit-identical at any thread count. A player-owned node's strategy is
  // its first successor (in edge order) already attracted at the snapshot;
  // that successor joined in an earlier round, so strategies always step
  // down the attractor ranking and cannot cycle.
  //
  // Each node enters the frontier at most once, so the total candidate
  // evaluations are bounded by sum over edges (w -> v) of outdeg(v).
  const int n = game.num_nodes();
  // Predecessor lists restricted to active nodes.
  std::vector<std::vector<int>> predecessors(n);
  for (int v = 0; v < n; ++v) {
    if (!active[v]) continue;
    for (int w : game.successors[v]) {
      if (active[w]) predecessors[w].push_back(v);
    }
  }

  // vector<char> rather than vector<bool>: workers read `attracted`
  // concurrently and vector<bool> proxies are not byte-addressable.
  std::vector<char> attracted(n, 0);
  std::vector<int> frontier;
  for (int v = 0; v < n; ++v) {
    if (active[v] && target[v]) {
      attracted[v] = 1;
      frontier.push_back(v);
    }
  }

  std::vector<char> is_candidate(n, 0);
  std::vector<int> candidates, next_frontier, chosen;
  std::vector<char> decide;
  while (!frontier.empty()) {
    candidates.clear();
    for (int w : frontier) {
      for (int v : predecessors[w]) {
        if (!attracted[v] && !is_candidate[v]) {
          is_candidate[v] = 1;
          candidates.push_back(v);
        }
      }
    }
    const int num_candidates = static_cast<int>(candidates.size());
    decide.assign(num_candidates, 0);
    chosen.assign(num_candidates, -1);
    core::parallel_for(num_candidates, [&](int i) {
      const int v = candidates[i];
      if (game.owner[v] == player) {
        for (int w : game.successors[v]) {
          if (active[w] && attracted[w]) {
            decide[i] = 1;
            chosen[i] = w;
            break;
          }
        }
      } else {
        // Opponent node: attracted once every active successor is. (A node
        // only becomes a candidate through an active successor, so the scan
        // is never vacuous.)
        char all_attracted = 1;
        for (int w : game.successors[v]) {
          if (active[w] && !attracted[w]) {
            all_attracted = 0;
            break;
          }
        }
        decide[i] = all_attracted;
      }
    });
    next_frontier.clear();
    for (int i = 0; i < num_candidates; ++i) {
      const int v = candidates[i];
      is_candidate[v] = 0;  // undecided nodes re-qualify in later rounds
      if (decide[i]) {
        attracted[v] = 1;
        if (strategy_out != nullptr && chosen[i] != -1) (*strategy_out)[v] = chosen[i];
        next_frontier.push_back(v);
      }
    }
    frontier.swap(next_frontier);
  }
  return std::vector<bool>(attracted.begin(), attracted.end());
}

namespace {

// Zielonka on the subgame induced by `active`. Writes winners/strategies for
// active nodes only.
void zielonka(const ParityGame& game, std::vector<bool> active,
              std::vector<Player>& winner, std::vector<int>& strategy) {
  const int n = game.num_nodes();
  int max_priority = -1;
  for (int v = 0; v < n; ++v) {
    if (active[v]) max_priority = std::max(max_priority, game.priority[v]);
  }
  if (max_priority < 0) return;  // empty subgame

  const Player favored = max_priority % 2;
  std::vector<bool> top(n, false);
  for (int v = 0; v < n; ++v) {
    top[v] = active[v] && game.priority[v] == max_priority;
  }

  std::vector<int> attract_strategy(n, -1);
  const std::vector<bool> region_a =
      attractor(game, favored, active, top, &attract_strategy);

  // Recurse on G \ A.
  std::vector<bool> rest = active;
  for (int v = 0; v < n; ++v) {
    if (region_a[v]) rest[v] = false;
  }
  std::vector<Player> sub_winner(n, -1);
  std::vector<int> sub_strategy(n, -1);
  zielonka(game, rest, sub_winner, sub_strategy);

  bool opponent_wins_somewhere = false;
  for (int v = 0; v < n; ++v) {
    if (rest[v] && sub_winner[v] == 1 - favored) {
      opponent_wins_somewhere = true;
      break;
    }
  }

  if (!opponent_wins_somewhere) {
    // `favored` wins the whole subgame: in the sub-subgame play the
    // recursive strategy; in A \ top attract toward top; on top pick any
    // active successor (revisiting max_priority forever is fine, and if the
    // play drifts back into `rest`, the recursive strategy takes over).
    for (int v = 0; v < n; ++v) {
      if (!active[v]) continue;
      winner[v] = favored;
      if (game.owner[v] != favored) {
        strategy[v] = -1;
        continue;
      }
      if (rest[v]) {
        strategy[v] = sub_strategy[v];
      } else if (!top[v] && attract_strategy[v] != -1) {
        strategy[v] = attract_strategy[v];
      } else {
        // A top node (or a target hit directly): any active successor.
        strategy[v] = -1;
        for (int w : game.successors[v]) {
          if (active[w]) {
            strategy[v] = w;
            break;
          }
        }
        SLAT_ASSERT_MSG(strategy[v] != -1, "total subgame node lost all successors");
      }
    }
    return;
  }

  // The opponent wins part of G \ A; their full winning region includes its
  // attractor. Recurse on the remainder.
  std::vector<bool> opponent_region(n, false);
  for (int v = 0; v < n; ++v) {
    opponent_region[v] = rest[v] && sub_winner[v] == 1 - favored;
  }
  std::vector<int> opp_attract_strategy(n, -1);
  const std::vector<bool> region_b =
      attractor(game, 1 - favored, active, opponent_region, &opp_attract_strategy);

  std::vector<bool> remainder = active;
  for (int v = 0; v < n; ++v) {
    if (region_b[v]) remainder[v] = false;
  }
  std::vector<Player> rem_winner(n, -1);
  std::vector<int> rem_strategy(n, -1);
  zielonka(game, remainder, rem_winner, rem_strategy);

  for (int v = 0; v < n; ++v) {
    if (!active[v]) continue;
    if (region_b[v]) {
      winner[v] = 1 - favored;
      if (game.owner[v] == 1 - favored) {
        if (opponent_region[v]) {
          strategy[v] = sub_strategy[v];
        } else {
          strategy[v] = opp_attract_strategy[v];
          SLAT_ASSERT(strategy[v] != -1);
        }
      } else {
        strategy[v] = -1;
      }
    } else {
      winner[v] = rem_winner[v];
      strategy[v] = game.owner[v] == rem_winner[v] ? rem_strategy[v] : -1;
    }
  }
}

}  // namespace

ParitySolution solve(const ParityGame& game) {
  SLAT_ASSERT_MSG(game.is_total(), "parity games must be total");
  const int n = game.num_nodes();
  ParitySolution solution;
  solution.winner.assign(n, -1);
  solution.strategy.assign(n, -1);
  std::vector<bool> active(n, true);
  zielonka(game, std::move(active), solution.winner, solution.strategy);
  return solution;
}

}  // namespace slat::games
