// Two-player parity games and Zielonka's recursive algorithm.
//
// Convention: max-parity. A play is won by player 0 iff the highest
// priority occurring infinitely often is even. Games must be total (every
// node has at least one successor); `add_sink_loops` can be used to
// totalize. Parity games are positionally determined; `solve` returns both
// winning regions and positional winning strategies.
//
// This is the decision substrate for the branching-time half of the paper:
// Rabin tree-automaton emptiness and regular-tree membership reduce to
// games with a Rabin winning condition (rabin_game.hpp), which reduce to
// parity via index appearance records.
#pragma once

#include <vector>

#include "common/assert.hpp"

namespace slat::games {

/// Player 0 ("Automaton"/Even) or player 1 ("Pathfinder"/Odd).
using Player = int;

/// A parity game arena. Nodes are dense indices.
struct ParityGame {
  std::vector<Player> owner;               ///< owner[v] ∈ {0, 1}
  std::vector<int> priority;               ///< priority[v] ≥ 0
  std::vector<std::vector<int>> successors;

  int num_nodes() const { return static_cast<int>(owner.size()); }

  /// Appends a node, returns its id.
  int add_node(Player player, int prio) {
    owner.push_back(player);
    priority.push_back(prio);
    successors.emplace_back();
    return num_nodes() - 1;
  }

  void add_edge(int from, int to) {
    SLAT_ASSERT(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes());
    successors[from].push_back(to);
  }

  bool is_total() const {
    for (const auto& succ : successors) {
      if (succ.empty()) return false;
    }
    return true;
  }
};

struct ParitySolution {
  std::vector<Player> winner;  ///< winner[v] ∈ {0, 1}
  /// strategy[v] = the successor the winner of v should move to when
  /// owner[v] == winner[v]; -1 otherwise.
  std::vector<int> strategy;
};

/// Zielonka's algorithm. Requires a total game.
ParitySolution solve(const ParityGame& game);

/// The attractor of `target` for `player` within the node set `active`
/// (true = in the subgame): nodes from which `player` can force reaching
/// `target`. Fills `strategy_out[v]` with an attracting edge for
/// player-owned nodes newly attracted (other entries untouched).
std::vector<bool> attractor(const ParityGame& game, Player player,
                            const std::vector<bool>& active,
                            const std::vector<bool>& target,
                            std::vector<int>* strategy_out = nullptr);

}  // namespace slat::games
