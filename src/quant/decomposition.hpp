// The quantitative decomposition theorem (HMS arXiv 2301.11175, Thm. 10,
// mirroring src/lattice/decomposition.hpp at the quantitative level): every
// property Φ is the pointwise minimum of its safety closure Φ* and the live
// part
//
//   Φ_live(w) = ⊤   if Φ*(w) = Φ(w)   (Φ already safe at w)
//             = Φ(w) otherwise,
//
// and Φ_live is live: wherever Φ_live(w) < ⊤ we have Φ*(w) > Φ(w) = Φ_live(w)
// and (closure monotone, Φ_live ≥ Φ) Φ_live*(w) ≥ Φ*(w) > Φ_live(w).
//
// Under the boolean embedding (embed.hpp) the triple specializes to the
// paper's qualitative decomposition L = lcl(L) ∩ (L ∪ ¬lcl(L)): safety is
// the closure verdict and live = ⊤ exactly on L ∪ ¬lcl(L).
#pragma once

#include <optional>
#include <span>
#include <string>

#include "quant/closure.hpp"
#include "quant/weighted.hpp"
#include "words/up_word.hpp"

namespace slat::quant {

/// The decomposition triple at one word: property = min(safety, live) holds
/// with exact double equality (the three values are selections from the
/// same computation, never re-derived arithmetic).
struct QuantDecomposition {
  double property;  ///< Φ(w)
  double safety;    ///< Φ*(w)
  double live;      ///< Φ_live(w)
};

QuantDecomposition decompose_at(const WeightedNba& aut, const words::UpWord& w);

/// nullopt if min(safety, live) == property, the closure is extensive
/// (safety ≥ property) and the live part certificate holds (live < ⊤ ⟹
/// safety > property) at every sampled word; otherwise a counterexample
/// description — the shape `lattice::is_valid_decomposition` has, one
/// sampled word at a time.
std::optional<std::string> verify_decomposition(const WeightedNba& aut,
                                                std::span<const words::UpWord> corpus);

/// nullopt if the closure laws hold on the corpus: extensivity
/// (Φ* ≥ Φ), safety of the closure (value of closure_automaton == Φ*) and
/// idempotence (closure of closure_automaton == Φ*, i.e. Φ** = Φ*).
std::optional<std::string> verify_closure_laws(const WeightedNba& aut,
                                               std::span<const words::UpWord> corpus);

/// The bridge to src/lattice: the sampled values {Φ(w), Φ*(w), Φ_live(w), ⊤}
/// over the corpus form a finite chain, where meet = min, so the pointwise
/// decomposition identity becomes `property = meet(safety, live)` in
/// `lattice::chain(k)` (via the `lattice::chain_index` embedding hook).
/// nullopt if the lattice-level identity holds at every sampled word.
std::optional<std::string> verify_chain_embedding(const WeightedNba& aut,
                                                  std::span<const words::UpWord> corpus);

}  // namespace slat::quant
