// Exact evaluation of weighted automata on ultimately periodic words, plus
// the per-prefix supremum that feeds the safety closure (closure.hpp).
//
// Φ(w) is computed on the product of the automaton with the lasso graph of
// w: Sup/Inf/LimSup/LimInf/LimAvg reduce to reachability, per-SCC cycle
// analyses (threshold descent, Karp's maximum mean cycle), all of which are
// pure selections or exact-dyadic arithmetic; DiscSum runs the PR 2
// thread-pool Jacobi value iteration, extracts a deterministic greedy
// policy, and returns the policy lasso's closed-form discounted value.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "quant/weighted.hpp"
#include "words/up_word.hpp"

namespace slat::quant {

/// Φ(w) = sup over infinite runs of the value-function fold; bottom_value()
/// when the automaton has no infinite run on w. Memoized per
/// (fingerprint, word); bit-identical at every thread count.
double value(const WeightedNba& aut, const words::UpWord& w);

/// One `value` call per word through the deterministic thread pool.
std::vector<double> batch_values(const WeightedNba& aut,
                                 std::span<const words::UpWord> words);

/// Per-state future analysis on the automaton graph (all symbols pooled):
/// `live[q]` — an infinite run can start at q; `rank[q]` — the best value
/// achievable from q ignoring any stem contribution:
///   Sup      max weight on an infinite run from q,
///   Inf      max over infinite runs from q of the run's min weight,
///   LimSup/LimInf/LimAvg
///            max over cyclic SCCs reachable from q of the SCC's limit value,
///   DiscSum  sup over infinite runs from q of the discounted sum
///            (Jacobi value iteration; the only approximate rank).
/// Dead states carry rank = bottom_value(). Memoized by fingerprint.
struct StateRanks {
  std::vector<bool> live;
  std::vector<double> rank;
};
std::shared_ptr<const StateRanks> state_ranks(const WeightedNba& aut);

}  // namespace slat::quant
