// The quantitative safety closure (HMS arXiv 2301.11175, §3): the pointwise
// least safe property above Φ,
//
//   Φ*(w) = inf over finite prefixes u of w of  prefix_sup(u),
//   prefix_sup(u) = sup over all ω-continuations w' of Φ(u · w').
//
// prefix_sup is non-increasing in the prefix, so on an ultimately periodic
// word the per-prefix configurations (live automaton states, each tagged
// with the best stem payload its runs can carry) are eventually periodic
// and the inf is reached at the first repeated (period-phase, config) pair
// — the quantitative analogue of `buchi::safety_closure`'s König argument.
//
// Discounted sum is special: with bounded weights Σ λ^i x_i is continuous
// on the finitely-branching run tree, so every DiscSum property is already
// safe and its closure IS its value (the compactness argument in
// THEORY.md); closure_value short-circuits to value() for it.
#pragma once

#include "quant/eval.hpp"
#include "quant/weighted.hpp"
#include "words/up_word.hpp"

namespace slat::quant {

/// sup over all ω-continuations w' of Φ(u · w'). Non-increasing in |u|.
double prefix_sup(const WeightedNba& aut, const words::Word& u);

/// Φ*(w) — the safety closure evaluated at w. Memoized per
/// (fingerprint, word); ≥ value(aut, w) with exact double comparisons under
/// the dyadic-weight contract of value_function.hpp.
double closure_value(const WeightedNba& aut, const words::UpWord& w);

/// An automaton denoting Φ* itself: the deterministic config automaton of
/// the closure iteration, with value function Inf and the edge into each
/// config weighted by that config's prefix_sup. Evaluating it with value()
/// reproduces closure_value (the closure is safe), and running
/// closure_value on IT reproduces it again (idempotence, Φ** = Φ*) — both
/// are qc properties. For kDiscSum the property is already safe and the
/// automaton itself is returned.
WeightedNba closure_automaton(const WeightedNba& aut);

/// Sampled membership tests, mirroring `buchi::classify_sampled`: Φ is safe
/// on the corpus iff Φ* = Φ at every sampled word, and live on the corpus
/// iff Φ(w) < ⊤ implies Φ*(w) > Φ(w) at every sampled word.
bool is_safety_on(const WeightedNba& aut, std::span<const words::UpWord> corpus);
bool is_liveness_on(const WeightedNba& aut, std::span<const words::UpWord> corpus);

}  // namespace slat::quant
