#include "quant/decomposition.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "lattice/constructions.hpp"

namespace slat::quant {

namespace {

std::string describe(const char* law, const WeightedNba& aut, const words::UpWord& w,
                     double lhs, double rhs) {
  std::ostringstream out;
  out << law << " violated at " << w.to_string(aut.nba().alphabet()) << ": " << lhs
      << " vs " << rhs;
  return out.str();
}

}  // namespace

QuantDecomposition decompose_at(const WeightedNba& aut, const words::UpWord& w) {
  QuantDecomposition d;
  d.property = value(aut, w);
  d.safety = closure_value(aut, w);
  d.live = d.safety == d.property ? aut.top_value() : d.property;
  return d;
}

std::optional<std::string> verify_decomposition(const WeightedNba& aut,
                                                std::span<const words::UpWord> corpus) {
  for (const words::UpWord& w : corpus) {
    const QuantDecomposition d = decompose_at(aut, w);
    if (d.safety < d.property) {
      return describe("extensivity (safety >= property)", aut, w, d.safety, d.property);
    }
    if (std::min(d.safety, d.live) != d.property) {
      return describe("min identity", aut, w, std::min(d.safety, d.live), d.property);
    }
    if (d.live < aut.top_value() && !(d.safety > d.property)) {
      return describe("liveness certificate (live < top => safety > property)", aut, w,
                      d.live, d.property);
    }
  }
  return std::nullopt;
}

std::optional<std::string> verify_closure_laws(const WeightedNba& aut,
                                               std::span<const words::UpWord> corpus) {
  const WeightedNba closed = closure_automaton(aut);
  for (const words::UpWord& w : corpus) {
    const double phi = value(aut, w);
    const double star = closure_value(aut, w);
    if (star < phi) return describe("extensivity (closure >= value)", aut, w, star, phi);
    const double star_as_value = value(closed, w);
    if (star_as_value != star) {
      return describe("closure automaton agreement", aut, w, star_as_value, star);
    }
    const double star_star = closure_value(closed, w);
    if (star_star != star) {
      return describe("idempotence (closure of closure)", aut, w, star_star, star);
    }
  }
  return std::nullopt;
}

std::optional<std::string> verify_chain_embedding(const WeightedNba& aut,
                                                  std::span<const words::UpWord> corpus) {
  std::vector<QuantDecomposition> triples;
  std::vector<double> universe = {aut.top_value()};
  for (const words::UpWord& w : corpus) {
    triples.push_back(decompose_at(aut, w));
    universe.push_back(triples.back().property);
    universe.push_back(triples.back().safety);
    universe.push_back(triples.back().live);
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()), universe.end());
  const lattice::FiniteLattice ch = lattice::chain(static_cast<int>(universe.size()));
  for (std::size_t i = 0; i < triples.size(); ++i) {
    const QuantDecomposition& d = triples[i];
    const lattice::Elem meet = ch.meet(lattice::chain_index(universe, d.safety),
                                       lattice::chain_index(universe, d.live));
    if (meet != lattice::chain_index(universe, d.property)) {
      return describe("chain-lattice meet identity", aut, corpus[i],
                      universe[static_cast<std::size_t>(meet)], d.property);
    }
  }
  return std::nullopt;
}

}  // namespace slat::quant
