#include "quant/closure.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>

#include "common/assert.hpp"
#include "core/memo_cache.hpp"

namespace slat::quant {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();

// A config is the subset of live automaton states reachable on the prefix
// read so far, each tagged with the best stem payload any run carries
// there: the running sup (kSup), the running inf (kInf), the discounted
// stem sum (kDiscSum), or nothing (the prefix-independent functions). In
// every case the continuation value is monotone in the payload, so keeping
// the per-state max is lossless.
using Config = std::vector<std::pair<State, double>>;  // sorted by state

double payload_init(ValueFn fn) {
  switch (fn) {
    case ValueFn::kSup: return kNegInf;
    case ValueFn::kInf: return kPosInf;
    case ValueFn::kDiscSum: return 0.0;
    default: return 0.0;
  }
}

// `factor` is λ^|prefix-read-so-far| (only read by kDiscSum).
double payload_step(ValueFn fn, double payload, double wt, double factor) {
  switch (fn) {
    case ValueFn::kSup: return std::max(payload, wt);
    case ValueFn::kInf: return std::min(payload, wt);
    case ValueFn::kDiscSum: return payload + factor * wt;
    default: return 0.0;
  }
}

Config initial_config(const WeightedNba& aut, const StateRanks& ranks) {
  Config config;
  const State q0 = aut.nba().initial();
  if (ranks.live[q0]) config.push_back({q0, payload_init(aut.value_fn())});
  return config;
}

Config step_config(const WeightedNba& aut, const StateRanks& ranks, const Config& config,
                   Sym sym, double factor) {
  const int n = aut.nba().num_states();
  std::vector<char> present(n, 0);
  std::vector<double> best(n, 0.0);
  for (const auto& [q, payload] : config) {
    const auto succ = aut.nba().successors(q, sym);
    const auto wts = aut.weights(q, sym);
    for (std::size_t i = 0; i < succ.size(); ++i) {
      const State t = succ[i];
      if (!ranks.live[t]) continue;
      const double p = payload_step(aut.value_fn(), payload, wts[i], factor);
      if (!present[t] || p > best[t]) {
        present[t] = 1;
        best[t] = p;
      }
    }
  }
  Config next;
  for (State t = 0; t < n; ++t) {
    if (present[t]) next.push_back({t, best[t]});
  }
  return next;
}

// prefix_sup of the prefix this config was reached on. `factor` is
// λ^|prefix| (kDiscSum only).
double config_rank(const WeightedNba& aut, const StateRanks& ranks, const Config& config,
                   double factor) {
  if (config.empty()) return aut.bottom_value();
  double best = kNegInf;
  for (const auto& [q, payload] : config) {
    double through = 0.0;
    switch (aut.value_fn()) {
      case ValueFn::kSup: through = std::max(payload, ranks.rank[q]); break;
      case ValueFn::kInf: through = std::min(payload, ranks.rank[q]); break;
      case ValueFn::kDiscSum: through = payload + factor * ranks.rank[q]; break;
      default: through = ranks.rank[q]; break;
    }
    best = std::max(best, through);
  }
  return best;
}

std::vector<std::uint64_t> config_key(int phase, const Config& config) {
  std::vector<std::uint64_t> key;
  key.reserve(1 + 2 * config.size());
  key.push_back(static_cast<std::uint64_t>(phase));
  for (const auto& [q, payload] : config) {
    key.push_back(static_cast<std::uint64_t>(q));
    key.push_back(std::bit_cast<std::uint64_t>(payload));
  }
  return key;
}

double closure_value_uncached(const WeightedNba& aut, const words::UpWord& w) {
  const auto ranks = state_ranks(aut);
  const int sp = static_cast<int>(w.prefix_size());
  const int len = sp + static_cast<int>(w.period_size());
  Config config = initial_config(aut, *ranks);
  double inf_so_far = config_rank(aut, *ranks, config, 1.0);
  std::map<std::vector<std::uint64_t>, bool> seen;
  for (int pos = 0;; ++pos) {
    if (config.empty()) return std::min(inf_so_far, aut.bottom_value());
    const int phase = pos < sp ? -1 : (pos - sp) % (len - sp);
    if (phase >= 0 && !seen.emplace(config_key(phase, config), true).second) {
      return inf_so_far;  // config cycle closed: all later prefix_sups repeat
    }
    SLAT_ASSERT(pos < (1 << 20));
    config = step_config(aut, *ranks, config, w.at(pos), 1.0);
    inf_so_far = std::min(inf_so_far, config_rank(aut, *ranks, config, 1.0));
  }
}

core::Digest closure_word_key(const WeightedNba& aut, const words::UpWord& w) {
  core::DigestBuilder b;
  b.add_string("quant.closure");
  b.add_digest(fingerprint(aut));
  b.add_int(static_cast<int>(w.prefix_size()));
  b.add_ints(w.prefix());
  b.add_int(static_cast<int>(w.period_size()));
  b.add_ints(w.period());
  return b.digest();
}

}  // namespace

double prefix_sup(const WeightedNba& aut, const words::Word& u) {
  const auto ranks = state_ranks(aut);
  Config config = initial_config(aut, *ranks);
  double factor = 1.0;
  const bool discounted = aut.value_fn() == ValueFn::kDiscSum;
  for (const Sym sym : u) {
    if (config.empty()) break;
    config = step_config(aut, *ranks, config, sym, factor);
    if (discounted) factor *= aut.discount();
  }
  return config_rank(aut, *ranks, config, factor);
}

double closure_value(const WeightedNba& aut, const words::UpWord& w) {
  // Every discounted-sum property is safe: Φ* = Φ (see header).
  if (aut.value_fn() == ValueFn::kDiscSum) return value(aut, w);
  static core::MemoCache<double>& cache = *new core::MemoCache<double>("quant.closure");
  return cache.get_or_compute(closure_word_key(aut, w),
                              [&] { return closure_value_uncached(aut, w); });
}

WeightedNba closure_automaton(const WeightedNba& aut) {
  if (aut.value_fn() == ValueFn::kDiscSum) return aut;
  static core::MemoCache<WeightedNba>& cache =
      *new core::MemoCache<WeightedNba>("quant.closure_automaton");
  return cache.get_or_compute(
      core::DigestBuilder()
          .add_string("quant.closure_automaton")
          .add_digest(fingerprint(aut))
          .digest(),
      [&] {
        const auto ranks = state_ranks(aut);
        const Config init = initial_config(aut, *ranks);
        // BFS over non-empty configs; a prefix whose config empties has no
        // continuation at all, so its runs simply die (value ⊥), matching
        // prefix_sup = ⊥ from that point on.
        std::map<std::vector<std::uint64_t>, int> ids;
        std::vector<Config> configs;
        std::vector<double> rank_of;
        const auto intern = [&](const Config& c) {
          const auto [it, inserted] = ids.emplace(config_key(0, c), configs.size());
          if (inserted) {
            SLAT_ASSERT(configs.size() < (1u << 14));
            configs.push_back(c);
            // Clamp only guards against final-ulp excursions of the LimAvg
            // cycle means outside the weight domain on non-dyadic inputs.
            rank_of.push_back(std::min(std::max(config_rank(aut, *ranks, c, 1.0),
                                                aut.bottom_value()),
                                       aut.top_value()));
          }
          return it->second;
        };
        WeightedNba out(aut.nba().alphabet(), 1, 0, ValueFn::kInf, 0.5,
                        aut.bottom_value(), aut.top_value());
        if (init.empty()) return out;  // dead from the start: constant ⊥
        intern(init);
        for (std::size_t i = 0; i < configs.size(); ++i) {
          const Config from = configs[i];  // copy: configs may reallocate
          for (Sym s = 0; s < aut.nba().alphabet().size(); ++s) {
            const Config to = step_config(aut, *ranks, from, s, 1.0);
            if (to.empty()) continue;
            intern(to);
          }
        }
        WeightedNba built(aut.nba().alphabet(), static_cast<int>(configs.size()), 0,
                          ValueFn::kInf, 0.5, aut.bottom_value(), aut.top_value());
        for (std::size_t i = 0; i < configs.size(); ++i) {
          built.nba().set_accepting(static_cast<State>(i), true);
          for (Sym s = 0; s < aut.nba().alphabet().size(); ++s) {
            const Config to = step_config(aut, *ranks, configs[i], s, 1.0);
            if (to.empty()) continue;
            const int j = ids.at(config_key(0, to));
            built.add_transition(static_cast<State>(i), s, static_cast<State>(j),
                                 rank_of[j]);
          }
        }
        return built;
      });
}

bool is_safety_on(const WeightedNba& aut, std::span<const words::UpWord> corpus) {
  for (const words::UpWord& w : corpus) {
    if (closure_value(aut, w) != value(aut, w)) return false;
  }
  return true;
}

bool is_liveness_on(const WeightedNba& aut, std::span<const words::UpWord> corpus) {
  for (const words::UpWord& w : corpus) {
    const double v = value(aut, w);
    if (v < aut.top_value() && closure_value(aut, w) <= v) return false;
  }
  return true;
}

}  // namespace slat::quant
