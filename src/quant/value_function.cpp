#include "quant/value_function.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace slat::quant {

std::string to_string(ValueFn fn) {
  switch (fn) {
    case ValueFn::kSup: return "Sup";
    case ValueFn::kInf: return "Inf";
    case ValueFn::kLimSup: return "LimSup";
    case ValueFn::kLimInf: return "LimInf";
    case ValueFn::kLimAvg: return "LimAvg";
    case ValueFn::kDiscSum: return "DiscSum";
  }
  SLAT_ASSERT(false);
}

double discounted_lasso_value(std::span<const double> stem, std::span<const double> cycle,
                              double discount) {
  SLAT_ASSERT(!cycle.empty());
  SLAT_ASSERT(discount > 0.0 && discount < 1.0);
  double factor = 1.0;
  double stem_sum = 0.0;
  for (const double w : stem) {
    stem_sum += factor * w;
    factor *= discount;
  }
  // `factor` is now λ^|stem|.
  double cycle_sum = 0.0;
  double cycle_factor = 1.0;
  for (const double w : cycle) {
    cycle_sum += cycle_factor * w;
    cycle_factor *= discount;
  }
  // `cycle_factor` is now λ^|cycle|.
  return stem_sum + factor * cycle_sum / (1.0 - cycle_factor);
}

double fold_value(ValueFn fn, double discount, const WeightLasso& lasso) {
  SLAT_ASSERT(!lasso.period.empty());
  const auto all_of = [&](double init, auto combine) {
    double acc = init;
    for (const double w : lasso.prefix) acc = combine(acc, w);
    for (const double w : lasso.period) acc = combine(acc, w);
    return acc;
  };
  const auto period_of = [&](double init, auto combine) {
    double acc = init;
    for (const double w : lasso.period) acc = combine(acc, w);
    return acc;
  };
  const auto max2 = [](double a, double b) { return std::max(a, b); };
  const auto min2 = [](double a, double b) { return std::min(a, b); };
  switch (fn) {
    case ValueFn::kSup:
      return all_of(lasso.period.front(), max2);
    case ValueFn::kInf:
      return all_of(lasso.period.front(), min2);
    case ValueFn::kLimSup:
      return period_of(lasso.period.front(), max2);
    case ValueFn::kLimInf:
      return period_of(lasso.period.front(), min2);
    case ValueFn::kLimAvg: {
      // On a lasso the running average converges to the period mean.
      double sum = 0.0;
      for (const double w : lasso.period) sum += w;
      return sum / static_cast<double>(lasso.period.size());
    }
    case ValueFn::kDiscSum:
      return discounted_lasso_value(lasso.prefix, lasso.period, discount);
  }
  SLAT_ASSERT(false);
}

}  // namespace slat::quant
