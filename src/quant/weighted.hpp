// Weighted ω-automata: an `Nba` transition structure (PR 6's CSR layout)
// plus a parallel per-edge weight array and a value function. The automaton
// denotes the quantitative property
//
//   Φ(w) = sup over infinite runs of A on w of fold(run weights)
//
// (sup of the empty set = bottom_value()). Büchi acceptance marks on the
// underlying Nba are ignored by the quantitative semantics — the boolean
// embedding (embed.hpp) encodes acceptance into weights instead, which is
// what ties this tier back to the qualitative pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "buchi/nba.hpp"
#include "core/memo_cache.hpp"
#include "quant/value_function.hpp"

namespace slat::quant {

using buchi::State;
using words::Sym;

class WeightedNba {
 public:
  /// Weights added later must lie in [domain_min, domain_max]; those bounds
  /// are the ⊥/⊤ of the weight lattice the property maps into. `discount`
  /// is only meaningful (and must be in (0,1)) for kDiscSum.
  WeightedNba(words::Alphabet alphabet, int num_states, State initial, ValueFn fn,
              double discount = 0.5, double domain_min = 0.0, double domain_max = 1.0);

  /// Copies rebuild the flat weight array lazily; the mutex/atomic members
  /// make the type copy-only (like a fresh construction, not a bit copy).
  WeightedNba(const WeightedNba& other);
  WeightedNba& operator=(const WeightedNba& other);

  const buchi::Nba& nba() const { return nba_; }
  buchi::Nba& nba() { return nba_; }

  ValueFn value_fn() const { return fn_; }
  double discount() const { return discount_; }
  double domain_min() const { return domain_min_; }
  double domain_max() const { return domain_max_; }

  /// ⊥/⊤ of the property's value domain. For the non-discounted value
  /// functions these coincide with the weight domain; a discounted sum of
  /// weights in [m, M] ranges over [m/(1−λ), M/(1−λ)].
  double bottom_value() const;
  double top_value() const;

  /// Adds the edge (and its weight) if not already present; like
  /// `Nba::add_transition`, a duplicate (from, symbol, to) is ignored — the
  /// first inserted weight wins, keeping the weight array aligned with the
  /// CSR first-occurrence dedup.
  void add_transition(State from, Sym symbol, State to, double weight);

  /// Weights aligned index-for-index with `nba().successors(q, symbol)`.
  std::span<const double> weights(State q, Sym symbol) const;

  /// Weight of a specific present edge (precondition: the edge exists).
  double weight_of(State from, Sym symbol, State to) const;

  std::string to_string() const;

 private:
  void rebuild_weights_locked() const;

  buchi::Nba nba_;
  ValueFn fn_;
  double discount_;
  double domain_min_;
  double domain_max_;
  // Insertion-keyed weight table (packed (from, symbol, to) → weight); the
  // flat CSR-aligned array is materialized lazily, mirroring Nba's own
  // lazy CSR rebuild.
  std::unordered_map<std::uint64_t, double> weight_by_edge_;
  mutable std::vector<double> flat_weights_;    // CSR-row-aligned
  mutable std::vector<std::size_t> row_start_;  // per (q, sym) row offset
  mutable std::atomic<bool> weights_dirty_{true};
  mutable std::mutex rebuild_mutex_;
};

/// Structural 128-bit digest: alphabet, transition structure, value
/// function, discount and every weight in CSR row order (doubles digested
/// by bit pattern). Two automata with equal fingerprints denote the same
/// property and hit the same MemoCache entries.
core::Digest fingerprint(const WeightedNba& aut);

}  // namespace slat::quant
