#include "quant/embed.hpp"

#include "buchi/safety.hpp"

namespace slat::quant {

namespace {

WeightedNba weighted_copy(const buchi::Nba& nba, ValueFn fn,
                          bool weight_is_accepting_target) {
  WeightedNba out(nba.alphabet(), nba.num_states(), nba.initial(), fn, 0.5, 0.0, 1.0);
  for (State q = 0; q < nba.num_states(); ++q) {
    out.nba().set_accepting(q, nba.is_accepting(q));
    for (Sym s = 0; s < nba.alphabet().size(); ++s) {
      for (const State t : nba.successors(q, s)) {
        const double wt =
            !weight_is_accepting_target || nba.is_accepting(t) ? 1.0 : 0.0;
        out.add_transition(q, s, t, wt);
      }
    }
  }
  return out;
}

}  // namespace

WeightedNba embed_buchi(const buchi::Nba& nba) {
  return weighted_copy(nba, ValueFn::kLimSup, /*weight_is_accepting_target=*/true);
}

WeightedNba embed_safety(const buchi::Nba& nba) {
  return weighted_copy(buchi::safety_closure(nba), ValueFn::kSup,
                       /*weight_is_accepting_target=*/false);
}

}  // namespace slat::quant
