#include "quant/weighted.hpp"

#include <bit>
#include <sstream>

#include "common/assert.hpp"

namespace slat::quant {

namespace {

// Edges are packed into 21-bit fields; automata this tier handles are far
// smaller than 2^21 states/symbols.
std::uint64_t pack_edge(State from, Sym symbol, State to) {
  SLAT_ASSERT(from >= 0 && from < (1 << 21));
  SLAT_ASSERT(symbol >= 0 && symbol < (1 << 21));
  SLAT_ASSERT(to >= 0 && to < (1 << 21));
  return (static_cast<std::uint64_t>(from) << 42) |
         (static_cast<std::uint64_t>(symbol) << 21) | static_cast<std::uint64_t>(to);
}

}  // namespace

WeightedNba::WeightedNba(words::Alphabet alphabet, int num_states, State initial,
                         ValueFn fn, double discount, double domain_min,
                         double domain_max)
    : nba_(std::move(alphabet), num_states, initial),
      fn_(fn),
      discount_(discount),
      domain_min_(domain_min),
      domain_max_(domain_max) {
  SLAT_ASSERT(domain_min_ <= domain_max_);
  if (fn_ == ValueFn::kDiscSum) SLAT_ASSERT(discount_ > 0.0 && discount_ < 1.0);
}

WeightedNba::WeightedNba(const WeightedNba& other)
    : nba_(other.nba_),
      fn_(other.fn_),
      discount_(other.discount_),
      domain_min_(other.domain_min_),
      domain_max_(other.domain_max_),
      weight_by_edge_(other.weight_by_edge_) {}

WeightedNba& WeightedNba::operator=(const WeightedNba& other) {
  if (this == &other) return *this;
  nba_ = other.nba_;
  fn_ = other.fn_;
  discount_ = other.discount_;
  domain_min_ = other.domain_min_;
  domain_max_ = other.domain_max_;
  weight_by_edge_ = other.weight_by_edge_;
  flat_weights_.clear();
  row_start_.clear();
  weights_dirty_.store(true, std::memory_order_release);
  return *this;
}

double WeightedNba::bottom_value() const {
  return fn_ == ValueFn::kDiscSum ? domain_min_ / (1.0 - discount_) : domain_min_;
}

double WeightedNba::top_value() const {
  return fn_ == ValueFn::kDiscSum ? domain_max_ / (1.0 - discount_) : domain_max_;
}

void WeightedNba::add_transition(State from, Sym symbol, State to, double weight) {
  SLAT_ASSERT(weight >= domain_min_ && weight <= domain_max_);
  nba_.add_transition(from, symbol, to);
  weight_by_edge_.emplace(pack_edge(from, symbol, to), weight);
  weights_dirty_.store(true, std::memory_order_release);
}

void WeightedNba::rebuild_weights_locked() const {
  const int n = nba_.num_states();
  const int sigma = nba_.alphabet().size();
  row_start_.assign(static_cast<std::size_t>(n) * sigma + 1, 0);
  flat_weights_.clear();
  flat_weights_.reserve(weight_by_edge_.size());
  for (State q = 0; q < n; ++q) {
    for (Sym s = 0; s < sigma; ++s) {
      for (const State t : nba_.successors(q, s)) {
        const auto it = weight_by_edge_.find(pack_edge(q, s, t));
        SLAT_ASSERT(it != weight_by_edge_.end());
        flat_weights_.push_back(it->second);
      }
      row_start_[static_cast<std::size_t>(q) * sigma + s + 1] = flat_weights_.size();
    }
  }
}

std::span<const double> WeightedNba::weights(State q, Sym symbol) const {
  SLAT_ASSERT(q >= 0 && q < nba_.num_states());
  SLAT_ASSERT(symbol >= 0 && symbol < nba_.alphabet().size());
  if (weights_dirty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(rebuild_mutex_);
    if (weights_dirty_.load(std::memory_order_relaxed)) {
      rebuild_weights_locked();
      weights_dirty_.store(false, std::memory_order_release);
    }
  }
  const std::size_t row = static_cast<std::size_t>(q) * nba_.alphabet().size() + symbol;
  return std::span<const double>(flat_weights_.data() + row_start_[row],
                                 row_start_[row + 1] - row_start_[row]);
}

double WeightedNba::weight_of(State from, Sym symbol, State to) const {
  const auto it = weight_by_edge_.find(pack_edge(from, symbol, to));
  SLAT_ASSERT(it != weight_by_edge_.end());
  return it->second;
}

std::string WeightedNba::to_string() const {
  std::ostringstream out;
  out << "WeightedNba fn=" << quant::to_string(fn_);
  if (fn_ == ValueFn::kDiscSum) out << " lambda=" << discount_;
  out << " domain=[" << domain_min_ << "," << domain_max_ << "]\n";
  out << nba_.to_string();
  for (State q = 0; q < nba_.num_states(); ++q) {
    for (Sym s = 0; s < nba_.alphabet().size(); ++s) {
      const auto succ = nba_.successors(q, s);
      const auto w = weights(q, s);
      for (std::size_t i = 0; i < succ.size(); ++i) {
        out << "  wt(" << q << "," << s << "," << succ[i] << ") = " << w[i] << "\n";
      }
    }
  }
  return out.str();
}

core::Digest fingerprint(const WeightedNba& aut) {
  core::DigestBuilder b;
  b.add_string("quant.weighted");
  b.add_digest(buchi::fingerprint(aut.nba()));
  b.add_int(static_cast<int>(aut.value_fn()));
  b.add(std::bit_cast<std::uint64_t>(aut.discount()));
  b.add(std::bit_cast<std::uint64_t>(aut.domain_min()));
  b.add(std::bit_cast<std::uint64_t>(aut.domain_max()));
  for (State q = 0; q < aut.nba().num_states(); ++q) {
    for (Sym s = 0; s < aut.nba().alphabet().size(); ++s) {
      for (const double w : aut.weights(q, s)) b.add(std::bit_cast<std::uint64_t>(w));
    }
  }
  return b.digest();
}

}  // namespace slat::quant
