// Value functions for quantitative properties over ω-words
// (Henzinger–Mazzocchi–Saraç, arXiv 2301.11175; Boker et al., arXiv
// 2307.06016). A value function folds an infinite weight sequence into a
// single value; a weighted automaton (weighted.hpp) induces the property
// Φ(w) = sup over runs of the fold of the run's weights.
//
// Exactness contract: Sup/Inf/LimSup/LimInf are pure max/min selections and
// are exact on doubles. LimAvg and DiscSum involve sums and one division;
// the qc generators draw weights from a small dyadic grid (gen.hpp) so every
// intermediate sum is exact and each final rounding is a deterministic
// function of the exact rational — identities such as extensivity and the
// decomposition minimum then hold with exact double equality.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace slat::quant {

/// How an infinite weight sequence x₀x₁x₂… is folded into one value.
enum class ValueFn {
  kSup,     ///< sup_i x_i
  kInf,     ///< inf_i x_i
  kLimSup,  ///< limsup_i x_i (max weight seen infinitely often)
  kLimInf,  ///< liminf_i x_i (min weight seen infinitely often)
  kLimAvg,  ///< limsup of the running average (mean-payoff)
  kDiscSum  ///< Σ_i λ^i · x_i for a discount factor λ ∈ (0, 1)
};

inline constexpr ValueFn kAllValueFns[] = {ValueFn::kSup,    ValueFn::kInf,
                                           ValueFn::kLimSup, ValueFn::kLimInf,
                                           ValueFn::kLimAvg, ValueFn::kDiscSum};

std::string to_string(ValueFn fn);

/// True for value functions whose fold ignores any finite prefix
/// (LimSup/LimInf/LimAvg). For these the safety closure depends only on the
/// set of automaton states reachable on a prefix, not on stem weights.
inline bool prefix_independent(ValueFn fn) {
  return fn == ValueFn::kLimSup || fn == ValueFn::kLimInf || fn == ValueFn::kLimAvg;
}

/// Exact discounted value of the lasso weight word stem·cycle^ω:
/// Σ_{i<|stem|} λ^i stem_i + λ^{|stem|} · (Σ_{j<|cycle|} λ^j cycle_j) / (1 − λ^{|cycle|}).
/// Shared by the reference fold (fold_value) and the policy evaluation in
/// eval.cpp so the two agree bit-for-bit.
double discounted_lasso_value(std::span<const double> stem, std::span<const double> cycle,
                              double discount);

/// An ultimately periodic weight sequence prefix·period^ω — the quantitative
/// analogue of words::UpWord, used by the qc generators ("lasso valuations")
/// and the fold mutants.
struct WeightLasso {
  std::vector<double> prefix;
  std::vector<double> period;  ///< never empty
};

/// Reference fold of a weight lasso under `fn` — direct formulas, no
/// automaton machinery. `discount` is only read for kDiscSum.
double fold_value(ValueFn fn, double discount, const WeightLasso& lasso);

}  // namespace slat::quant
