#include "quant/eval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "buchi/nba.hpp"
#include "common/assert.hpp"
#include "core/memo_cache.hpp"
#include "core/parallel.hpp"

namespace slat::quant {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();

// Flat weighted digraph shared by the two evaluation surfaces: the
// automaton × lasso product (value) and the automaton graph with all
// symbols pooled (state_ranks).
struct WGraph {
  int n = 0;
  std::vector<int> offsets;  // n + 1
  std::vector<int> targets;
  std::vector<double> wts;
};

// SCC structure with the two derived facts every value function needs:
// which SCCs contain a cycle (an internal edge — covers self-loops), and
// which can reach one (== an infinite path starts there). Component ids are
// in reverse topological order (Nba's Tarjan), so cross edges go from
// higher to lower ids and both DPs below are single ascending passes.
struct SccView {
  std::vector<int> comp;
  int num = 0;
  std::vector<char> cyclic;    // per SCC
  std::vector<char> live_scc;  // per SCC: reaches a cyclic SCC
  std::vector<std::vector<int>> members;
};

SccView scc_view(const WGraph& g, double min_wt) {
  SccView view;
  auto scc = buchi::detail::strongly_connected_components(
      g.n, [&](int u, const std::function<void(int)>& visit) {
        for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
          if (g.wts[e] >= min_wt) visit(g.targets[e]);
        }
      });
  view.comp = std::move(scc.component);
  view.num = scc.num_components;
  view.cyclic.assign(view.num, 0);
  view.members.assign(view.num, {});
  for (int u = 0; u < g.n; ++u) view.members[view.comp[u]].push_back(u);
  for (int u = 0; u < g.n; ++u) {
    for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      if (g.wts[e] >= min_wt && view.comp[u] == view.comp[g.targets[e]]) {
        view.cyclic[view.comp[u]] = 1;
      }
    }
  }
  view.live_scc = view.cyclic;
  for (int c = 0; c < view.num; ++c) {
    if (view.live_scc[c]) continue;
    for (const int u : view.members[c]) {
      for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
        if (g.wts[e] >= min_wt && view.live_scc[view.comp[g.targets[e]]]) {
          view.live_scc[c] = 1;
          break;
        }
      }
      if (view.live_scc[c]) break;
    }
  }
  return view;
}

std::vector<char> reach_from(const WGraph& g, int start, double min_wt) {
  std::vector<char> reach(g.n, 0);
  std::vector<int> stack = {start};
  reach[start] = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      if (g.wts[e] < min_wt) continue;
      const int t = g.targets[e];
      if (!reach[t]) {
        reach[t] = 1;
        stack.push_back(t);
      }
    }
  }
  return reach;
}

std::vector<double> distinct_weights_desc(const WGraph& g) {
  std::vector<double> ws = g.wts;
  std::sort(ws.begin(), ws.end(), std::greater<double>());
  ws.erase(std::unique(ws.begin(), ws.end()), ws.end());
  return ws;
}

// Karp's maximum mean cycle over one nontrivial SCC, given its member list
// and using only internal edges of weight ≥ min_wt. d_k(v) = best weight of
// a k-edge walk ending at v starting anywhere in the SCC (d_0 ≡ 0); the
// maximum cycle mean is max_v min_k (d_m(v) − d_k(v)) / (m − k).
double karp_max_mean(const WGraph& g, const SccView& view, int c, double min_wt) {
  const std::vector<int>& nodes = view.members[c];
  const int m = static_cast<int>(nodes.size());
  std::vector<int> local(g.n, -1);
  for (int i = 0; i < m; ++i) local[nodes[i]] = i;
  struct LocalEdge {
    int from, to;
    double wt;
  };
  std::vector<LocalEdge> edges;
  for (int i = 0; i < m; ++i) {
    const int u = nodes[i];
    for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      const int t = g.targets[e];
      if (g.wts[e] >= min_wt && local[t] >= 0) edges.push_back({i, local[t], g.wts[e]});
    }
  }
  std::vector<std::vector<double>> d(m + 1, std::vector<double>(m, kNegInf));
  d[0].assign(m, 0.0);
  for (int k = 1; k <= m; ++k) {
    for (const LocalEdge& e : edges) {
      if (d[k - 1][e.from] == kNegInf) continue;
      d[k][e.to] = std::max(d[k][e.to], d[k - 1][e.from] + e.wt);
    }
  }
  double best = kNegInf;
  for (int v = 0; v < m; ++v) {
    if (d[m][v] == kNegInf) continue;
    double worst = kPosInf;
    for (int k = 0; k < m; ++k) {
      if (d[k][v] == kNegInf) continue;
      worst = std::min(worst, (d[m][v] - d[k][v]) / static_cast<double>(m - k));
    }
    best = std::max(best, worst);
  }
  return best;
}

// Does some SCC of the induced subgraph (members of `c`, internal edges of
// weight ≥ min_wt) contain a cycle?
bool scc_has_cycle_at(const WGraph& g, const SccView& view, int c, double min_wt) {
  const std::vector<int>& nodes = view.members[c];
  std::vector<int> local(g.n, -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) local[nodes[i]] = static_cast<int>(i);
  auto sub = buchi::detail::strongly_connected_components(
      static_cast<int>(nodes.size()), [&](int i, const std::function<void(int)>& visit) {
        const int u = nodes[i];
        for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
          if (g.wts[e] >= min_wt && local[g.targets[e]] >= 0) visit(local[g.targets[e]]);
        }
      });
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const int u = nodes[i];
    for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      const int lt = local[g.targets[e]];
      if (g.wts[e] >= min_wt && lt >= 0 && sub.component[static_cast<int>(i)] == sub.component[lt]) {
        return true;
      }
    }
  }
  return false;
}

// Limit value of one cyclic SCC: the best value a run that stays inside the
// SCC forever can force (per-SCC-then-max keeps every comparison a pure
// selection over the same weight multiset on both evaluation surfaces).
double scc_limit_value(ValueFn fn, const WGraph& g, const SccView& view, int c) {
  const std::vector<int>& nodes = view.members[c];
  std::vector<double> internal;
  for (const int u : nodes) {
    for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      if (view.comp[g.targets[e]] == c) internal.push_back(g.wts[e]);
    }
  }
  SLAT_ASSERT(!internal.empty());
  switch (fn) {
    case ValueFn::kLimSup:
      return *std::max_element(internal.begin(), internal.end());
    case ValueFn::kLimInf: {
      // Largest t such that the SCC still has a cycle using only weights ≥ t.
      std::sort(internal.begin(), internal.end(), std::greater<double>());
      internal.erase(std::unique(internal.begin(), internal.end()), internal.end());
      for (const double t : internal) {
        if (scc_has_cycle_at(g, view, c, t)) return t;
      }
      // The SCC's own min-weight threshold keeps every internal edge, so the
      // loop always returns.
      SLAT_ASSERT(false);
      return kNegInf;
    }
    case ValueFn::kLimAvg:
      return karp_max_mean(g, view, c, kNegInf);
    default:
      SLAT_ASSERT(false);
  }
}

// Is there an infinite path from `start` using only edges of weight ≥ t?
bool has_infinite_path(const WGraph& g, int start, double t) {
  const std::vector<char> reach = reach_from(g, start, t);
  auto scc = buchi::detail::strongly_connected_components(
      g.n, [&](int u, const std::function<void(int)>& visit) {
        for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
          if (g.wts[e] >= t) visit(g.targets[e]);
        }
      });
  for (int u = 0; u < g.n; ++u) {
    if (!reach[u]) continue;
    for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      if (g.wts[e] >= t && scc.component[u] == scc.component[g.targets[e]]) return true;
    }
  }
  return false;
}

// Jacobi value iteration for sup-discounted-sum over the `active` node set
// (every active node keeps at least one active successor), then a
// deterministic greedy policy walk whose lasso is evaluated in closed form.
// The PR 2 pool makes each sweep bit-identical at every thread count.
double disc_sum_from(const WGraph& g, int start, const std::vector<char>& active,
                     double discount, double scale) {
  std::vector<int> active_nodes;
  for (int u = 0; u < g.n; ++u) {
    if (active[u]) active_nodes.push_back(u);
  }
  std::vector<double> v(g.n, 0.0);
  std::vector<double> nv(g.n, 0.0);
  const double tol = 1e-13 * std::max(1.0, scale);
  for (int iter = 0; iter < 20000; ++iter) {
    core::parallel_for(static_cast<int>(active_nodes.size()), [&](int i) {
      const int u = active_nodes[i];
      double best = kNegInf;
      for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
        const int t = g.targets[e];
        if (active[t]) best = std::max(best, g.wts[e] + discount * v[t]);
      }
      nv[u] = best;
    });
    double delta = 0.0;
    for (const int u : active_nodes) delta = std::max(delta, std::abs(nv[u] - v[u]));
    std::swap(v, nv);
    if (delta <= tol) break;
  }
  // Greedy walk: first edge attaining the max wins, so the extracted lasso
  // is a deterministic function of the converged values.
  std::vector<int> pos_in_path(g.n, -1);
  std::vector<double> path_wts;
  int u = start;
  while (pos_in_path[u] == -1) {
    pos_in_path[u] = static_cast<int>(path_wts.size());
    int best_target = -1;
    double best_score = kNegInf;
    double best_wt = 0.0;
    for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      const int t = g.targets[e];
      if (!active[t]) continue;
      const double score = g.wts[e] + discount * v[t];
      if (score > best_score) {
        best_score = score;
        best_target = t;
        best_wt = g.wts[e];
      }
    }
    SLAT_ASSERT(best_target >= 0);
    path_wts.push_back(best_wt);
    u = best_target;
  }
  const int cut = pos_in_path[u];
  const std::span<const double> all(path_wts);
  return discounted_lasso_value(all.subspan(0, cut), all.subspan(cut), discount);
}

WGraph product_graph(const WeightedNba& aut, const words::UpWord& w) {
  const buchi::Nba& nba = aut.nba();
  const int sp = static_cast<int>(w.prefix_size());
  const int len = sp + static_cast<int>(w.period_size());
  const int n = nba.num_states();
  WGraph g;
  g.n = n * len;
  g.offsets.assign(g.n + 1, 0);
  const auto node = [len](State q, int p) { return q * len + p; };
  for (State q = 0; q < n; ++q) {
    for (int p = 0; p < len; ++p) {
      const Sym sym = w.at(p);
      SLAT_ASSERT(sym >= 0 && sym < nba.alphabet().size());
      g.offsets[node(q, p) + 1] = static_cast<int>(nba.successors(q, sym).size());
    }
  }
  for (int i = 0; i < g.n; ++i) g.offsets[i + 1] += g.offsets[i];
  g.targets.resize(g.offsets[g.n]);
  g.wts.resize(g.offsets[g.n]);
  for (State q = 0; q < n; ++q) {
    for (int p = 0; p < len; ++p) {
      const Sym sym = w.at(p);
      const int next = p + 1 < len ? p + 1 : sp;
      const auto succ = nba.successors(q, sym);
      const auto wts = aut.weights(q, sym);
      int e = g.offsets[node(q, p)];
      for (std::size_t i = 0; i < succ.size(); ++i, ++e) {
        g.targets[e] = node(succ[i], next);
        g.wts[e] = wts[i];
      }
    }
  }
  return g;
}

WGraph automaton_graph(const WeightedNba& aut) {
  const buchi::Nba& nba = aut.nba();
  WGraph g;
  g.n = nba.num_states();
  g.offsets.assign(g.n + 1, 0);
  for (State q = 0; q < g.n; ++q) {
    int count = 0;
    for (Sym s = 0; s < nba.alphabet().size(); ++s) {
      count += static_cast<int>(nba.successors(q, s).size());
    }
    g.offsets[q + 1] = g.offsets[q] + count;
  }
  g.targets.resize(g.offsets[g.n]);
  g.wts.resize(g.offsets[g.n]);
  for (State q = 0; q < g.n; ++q) {
    int e = g.offsets[q];
    for (Sym s = 0; s < nba.alphabet().size(); ++s) {
      const auto succ = nba.successors(q, s);
      const auto wts = aut.weights(q, s);
      for (std::size_t i = 0; i < succ.size(); ++i, ++e) {
        g.targets[e] = succ[i];
        g.wts[e] = wts[i];
      }
    }
  }
  return g;
}

double value_uncached(const WeightedNba& aut, const words::UpWord& w) {
  const WGraph g = product_graph(aut, w);
  const int start = aut.nba().initial() * (static_cast<int>(w.prefix_size()) +
                                           static_cast<int>(w.period_size()));
  const double bottom = aut.bottom_value();
  const SccView view = scc_view(g, kNegInf);
  const std::vector<char> reach = reach_from(g, start, kNegInf);
  if (!view.live_scc[view.comp[start]]) return bottom;  // no infinite run on w
  switch (aut.value_fn()) {
    case ValueFn::kSup: {
      // Best weight on any edge some infinite run can traverse.
      double best = kNegInf;
      for (int u = 0; u < g.n; ++u) {
        if (!reach[u]) continue;
        for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
          if (view.live_scc[view.comp[g.targets[e]]]) best = std::max(best, g.wts[e]);
        }
      }
      return best == kNegInf ? bottom : best;
    }
    case ValueFn::kInf: {
      // Largest t admitting an infinite run that never drops below t.
      for (const double t : distinct_weights_desc(g)) {
        if (has_infinite_path(g, start, t)) return t;
      }
      return bottom;
    }
    case ValueFn::kLimSup:
    case ValueFn::kLimInf:
    case ValueFn::kLimAvg: {
      // A run eventually stays inside one SCC; take the best reachable one.
      double best = kNegInf;
      for (int c = 0; c < view.num; ++c) {
        if (!view.cyclic[c]) continue;
        if (!reach[view.members[c].front()]) continue;
        best = std::max(best, scc_limit_value(aut.value_fn(), g, view, c));
      }
      return best == kNegInf ? bottom : best;
    }
    case ValueFn::kDiscSum: {
      std::vector<char> active(g.n, 0);
      for (int u = 0; u < g.n; ++u) {
        active[u] = reach[u] && view.live_scc[view.comp[u]];
      }
      const double scale =
          std::max(std::abs(aut.top_value()), std::abs(aut.bottom_value()));
      const double raw = disc_sum_from(g, start, active, aut.discount(), scale);
      // The exact value lies in [bottom_value, top_value]; clamping only
      // removes final-ulp rounding so the decomposition min stays exact.
      return std::min(std::max(raw, aut.bottom_value()), aut.top_value());
    }
  }
  SLAT_ASSERT(false);
}

core::Digest word_digest(const words::UpWord& w) {
  core::DigestBuilder b;
  b.add_string("upword");
  b.add_int(static_cast<int>(w.prefix_size()));
  b.add_ints(w.prefix());
  b.add_int(static_cast<int>(w.period_size()));
  b.add_ints(w.period());
  return b.digest();
}

}  // namespace

double value(const WeightedNba& aut, const words::UpWord& w) {
  static core::MemoCache<double>& cache = *new core::MemoCache<double>("quant.value");
  return cache.get_or_compute(core::DigestBuilder()
                                  .add_string("quant.value")
                                  .add_digest(fingerprint(aut))
                                  .add_digest(word_digest(w))
                                  .digest(),
                              [&] { return value_uncached(aut, w); });
}

std::vector<double> batch_values(const WeightedNba& aut,
                                 std::span<const words::UpWord> words) {
  // Touch the lazy CSR/weight tables once up front so the pool workers only
  // ever read them.
  if (aut.nba().num_states() > 0 && aut.nba().alphabet().size() > 0) {
    (void)aut.weights(0, 0);
  }
  return core::parallel_map<double>(static_cast<int>(words.size()),
                                    [&](int i) { return value(aut, words[i]); });
}

std::shared_ptr<const StateRanks> state_ranks(const WeightedNba& aut) {
  static core::MemoCache<std::shared_ptr<const StateRanks>>& cache =
      *new core::MemoCache<std::shared_ptr<const StateRanks>>("quant.state_ranks");
  return cache.get_or_compute(
      core::DigestBuilder()
          .add_string("quant.state_ranks")
          .add_digest(fingerprint(aut))
          .digest(),
      [&]() -> std::shared_ptr<const StateRanks> {
        const WGraph g = automaton_graph(aut);
        const SccView view = scc_view(g, kNegInf);
        auto ranks = std::make_shared<StateRanks>();
        ranks->live.assign(g.n, false);
        ranks->rank.assign(g.n, aut.bottom_value());
        for (int q = 0; q < g.n; ++q) ranks->live[q] = view.live_scc[view.comp[q]] != 0;
        switch (aut.value_fn()) {
          case ValueFn::kSup: {
            // Per-SCC best usable edge weight, then a max over the SCC DAG
            // (ascending ids: every cross edge goes to a finished SCC).
            std::vector<double> best(view.num, kNegInf);
            for (int c = 0; c < view.num; ++c) {
              for (const int u : view.members[c]) {
                for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
                  const int t = g.targets[e];
                  if (ranks->live[t]) best[c] = std::max(best[c], g.wts[e]);
                  if (view.comp[t] != c) best[c] = std::max(best[c], best[view.comp[t]]);
                }
              }
            }
            for (int q = 0; q < g.n; ++q) {
              if (ranks->live[q]) ranks->rank[q] = best[view.comp[q]];
            }
            break;
          }
          case ValueFn::kInf: {
            // Descending threshold sweep: the first t at which q still has
            // an infinite ≥t run is its rank.
            std::vector<char> assigned(g.n, 0);
            for (const double t : distinct_weights_desc(g)) {
              const SccView filtered = scc_view(g, t);
              for (int q = 0; q < g.n; ++q) {
                if (!assigned[q] && filtered.live_scc[filtered.comp[q]]) {
                  assigned[q] = 1;
                  ranks->rank[q] = t;
                }
              }
            }
            break;
          }
          case ValueFn::kLimSup:
          case ValueFn::kLimInf:
          case ValueFn::kLimAvg: {
            std::vector<double> best(view.num, kNegInf);
            for (int c = 0; c < view.num; ++c) {
              if (view.cyclic[c]) {
                best[c] = scc_limit_value(aut.value_fn(), g, view, c);
              }
              for (const int u : view.members[c]) {
                for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
                  const int c2 = view.comp[g.targets[e]];
                  if (c2 != c) best[c] = std::max(best[c], best[c2]);
                }
              }
            }
            for (int q = 0; q < g.n; ++q) {
              if (ranks->live[q]) ranks->rank[q] = best[view.comp[q]];
            }
            break;
          }
          case ValueFn::kDiscSum: {
            // Jacobi sweeps over live states only; dead states keep ⊥.
            std::vector<int> live_nodes;
            for (int q = 0; q < g.n; ++q) {
              if (ranks->live[q]) live_nodes.push_back(q);
            }
            std::vector<double> v(g.n, 0.0);
            std::vector<double> nv(g.n, 0.0);
            const double lambda = aut.discount();
            const double tol =
                1e-13 * std::max(1.0, std::max(std::abs(aut.top_value()),
                                               std::abs(aut.bottom_value())));
            for (int iter = 0; iter < 20000; ++iter) {
              core::parallel_for(static_cast<int>(live_nodes.size()), [&](int i) {
                const int u = live_nodes[i];
                double best = kNegInf;
                for (int e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
                  const int t = g.targets[e];
                  if (ranks->live[t]) best = std::max(best, g.wts[e] + lambda * v[t]);
                }
                nv[u] = best;
              });
              double delta = 0.0;
              for (const int u : live_nodes) delta = std::max(delta, std::abs(nv[u] - v[u]));
              std::swap(v, nv);
              if (delta <= tol) break;
            }
            for (const int u : live_nodes) {
              ranks->rank[u] =
                  std::min(std::max(v[u], aut.bottom_value()), aut.top_value());
            }
            break;
          }
        }
        return ranks;
      });
}

}  // namespace slat::quant
