// Boolean embeddings: the {0,1}-weighted automata that re-express the
// qualitative pipeline inside the quantitative tier. They are the
// differential oracle tying src/quant back to everything already verified:
//
//   embed_buchi(B)  — LimSup, weight(q →σ t) = [t accepting]. A run has
//     fold 1 iff it visits accepting states infinitely often, so
//     value == 1 ⟺ B accepts w, closure_value == 1 ⟺ lcl(L(B)) accepts w
//     (the subset configs are exactly DetSafety's), and the decomposition
//     live part is ⊤ exactly on L(B) ∪ ¬lcl(L(B)) = the qualitative
//     liveness part of `buchi::decompose`.
//
//   embed_safety(B) — Sup, all weights 1, over `buchi::safety_closure(B)`.
//     The closure automaton is all-accepting, so acceptance = existence of
//     an infinite run, which Sup with weight 1 captures exactly:
//     value == 1 ⟺ lcl(L(B)) accepts w. This is the {0,1}/Sup reading of
//     the ISSUE's embedding: a qualitative safety property IS a Sup
//     property.
//
// Both produce weights in {0.0, 1.0} with domain [0, 1]; every agreement
// check is an exact double comparison (bit-identical at any thread count —
// the quantitative evaluation is deterministic and thread-invariant).
#pragma once

#include "buchi/nba.hpp"
#include "quant/weighted.hpp"

namespace slat::quant {

/// LimSup embedding of an arbitrary NBA: value(w) = [w ∈ L(B)].
WeightedNba embed_buchi(const buchi::Nba& nba);

/// Sup embedding of the safety closure: value(w) = [w ∈ lcl(L(B))].
WeightedNba embed_safety(const buchi::Nba& nba);

}  // namespace slat::quant
