#include "qc/gen.hpp"

#include <algorithm>
#include <iterator>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "lattice/finite_poset.hpp"

namespace slat::qc {

namespace {

int pick_int(std::mt19937& rng, int lo, int hi) {
  SLAT_ASSERT(lo <= hi);
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

double pick_real(std::mt19937& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

}  // namespace

Gen<buchi::Nba> arbitrary_nba(const NbaDomain& domain) {
  return Gen<buchi::Nba>([domain](std::mt19937& rng) {
    buchi::RandomNbaConfig config;
    config.num_states = pick_int(rng, domain.min_states, domain.max_states);
    config.alphabet_size = pick_int(rng, domain.min_alphabet, domain.max_alphabet);
    config.transition_density = pick_real(rng, domain.min_density, domain.max_density);
    config.accepting_probability =
        pick_real(rng, domain.min_accepting, domain.max_accepting);
    return buchi::random_nba(config, rng);
  });
}

Gen<words::UpWord> arbitrary_up_word(const UpWordDomain& domain) {
  return Gen<words::UpWord>([domain](std::mt19937& rng) {
    const int prefix_len = pick_int(rng, 0, domain.max_prefix);
    const int period_len = pick_int(rng, 1, domain.max_period);
    words::Word prefix(prefix_len), period(period_len);
    for (auto& s : prefix) s = pick_int(rng, 0, domain.alphabet_size - 1);
    for (auto& s : period) s = pick_int(rng, 0, domain.alphabet_size - 1);
    return words::UpWord(std::move(prefix), std::move(period));
  });
}

ltl::FormulaId random_formula(ltl::LtlArena& arena, int max_depth, std::mt19937& rng) {
  // Atom payloads range over letters (explicit) or propositions (AP-backed)
  // — over a 2^k alphabet, drawing from `size()` would both skew the
  // leaf-kind mix and hand out-of-range atoms to the arena.
  const int sigma = arena.alphabet().atom_range();
  if (max_depth <= 0) {
    switch (pick_int(rng, 0, sigma + 1)) {
      case 0:
        return arena.tru();
      case 1:
        return arena.fls();
      default:
        return arena.atom(static_cast<words::Sym>(pick_int(rng, 0, sigma - 1)));
    }
  }
  switch (pick_int(rng, 0, 9)) {
    case 0:
      return arena.negation(random_formula(arena, max_depth - 1, rng));
    case 1:
      return arena.conj(random_formula(arena, max_depth - 1, rng),
                        random_formula(arena, max_depth - 1, rng));
    case 2:
      return arena.disj(random_formula(arena, max_depth - 1, rng),
                        random_formula(arena, max_depth - 1, rng));
    case 3:
      return arena.implies(random_formula(arena, max_depth - 1, rng),
                           random_formula(arena, max_depth - 1, rng));
    case 4:
      return arena.next(random_formula(arena, max_depth - 1, rng));
    case 5:
      return arena.eventually(random_formula(arena, max_depth - 1, rng));
    case 6:
      return arena.always(random_formula(arena, max_depth - 1, rng));
    case 7:
      return arena.until(random_formula(arena, max_depth - 1, rng),
                         random_formula(arena, max_depth - 1, rng));
    case 8:
      return arena.release(random_formula(arena, max_depth - 1, rng),
                           random_formula(arena, max_depth - 1, rng));
    default:
      return random_formula(arena, 0, rng);  // keep some leaves at depth
  }
}

trees::CtlId random_ctl(trees::CtlArena& arena, int max_depth, std::mt19937& rng) {
  const int sigma = arena.alphabet().size();
  if (max_depth <= 0) {
    switch (pick_int(rng, 0, sigma + 1)) {
      case 0:
        return arena.tru();
      case 1:
        return arena.fls();
      default:
        return arena.atom(static_cast<words::Sym>(pick_int(rng, 0, sigma - 1)));
    }
  }
  const auto sub = [&] { return random_ctl(arena, max_depth - 1, rng); };
  switch (pick_int(rng, 0, 14)) {
    case 0:
      return arena.negation(sub());
    case 1:
      return arena.conj(sub(), sub());
    case 2:
      return arena.disj(sub(), sub());
    case 3:
      return arena.implies(sub(), sub());
    case 4:
      return arena.ex(sub());
    case 5:
      return arena.ax(sub());
    case 6:
      return arena.ef(sub());
    case 7:
      return arena.af(sub());
    case 8:
      return arena.eg(sub());
    case 9:
      return arena.ag(sub());
    case 10:
      return arena.eu(sub(), sub());
    case 11:
      return arena.au(sub(), sub());
    case 12:
      return arena.er(sub(), sub());
    case 13:
      return arena.ar(sub(), sub());
    default:
      return random_ctl(arena, 0, rng);
  }
}

Gen<rabin::RabinTreeAutomaton> arbitrary_rabin(const RabinDomain& domain) {
  return Gen<rabin::RabinTreeAutomaton>([domain](std::mt19937& rng) {
    rabin::RandomRabinConfig config;
    config.num_states = pick_int(rng, domain.min_states, domain.max_states);
    config.alphabet_size = domain.alphabet_size;
    config.branching = domain.branching;
    config.num_pairs = pick_int(rng, domain.min_pairs, domain.max_pairs);
    config.tuples_per_slot = pick_real(rng, domain.min_tuples, domain.max_tuples);
    return rabin::random_rabin(config, rng);
  });
}

Gen<trees::KTree> arbitrary_ktree(const KTreeDomain& domain) {
  return Gen<trees::KTree>([domain](std::mt19937& rng) {
    const int nodes = pick_int(rng, domain.min_nodes, domain.max_nodes);
    return trees::random_regular_tree(words::Alphabet::of_size(domain.alphabet_size),
                                      nodes, domain.arity, rng);
  });
}

lattice::FiniteLattice random_lattice(int universe_bits, std::mt19937& rng) {
  SLAT_ASSERT(universe_bits >= 1 && universe_bits <= 5);
  const int k = pick_int(rng, 1, universe_bits);
  const std::uint32_t full = (1u << k) - 1;

  // A random family of subsets, then close under intersection; the full set
  // is always a member (top). Member count biased small.
  std::vector<bool> member(full + 1, false);
  member[full] = true;
  const int draws = pick_int(rng, 0, k + 3);
  for (int i = 0; i < draws; ++i) {
    member[pick_int(rng, 0, static_cast<int>(full))] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t a = 0; a <= full; ++a) {
      if (!member[a]) continue;
      for (std::uint32_t b = a + 1; b <= full; ++b) {
        if (member[b] && !member[a & b]) {
          member[a & b] = true;
          changed = true;
        }
      }
    }
  }

  std::vector<std::uint32_t> elems;
  for (std::uint32_t m = 0; m <= full; ++m) {
    if (member[m]) elems.push_back(m);
  }
  const int n = static_cast<int>(elems.size());
  std::vector<std::vector<bool>> leq(n, std::vector<bool>(n, false));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      leq[i][j] = (elems[i] & elems[j]) == elems[i];
    }
  }
  auto poset = lattice::FinitePoset::from_leq(std::move(leq));
  SLAT_ASSERT(poset.has_value());
  auto result = lattice::FiniteLattice::from_poset(std::move(*poset));
  // An intersection-closed family with a top is always a lattice (the join
  // of a, b is the meet of all members containing a ∪ b).
  SLAT_ASSERT(result.has_value());
  return std::move(*result);
}

Gen<lattice::FiniteLattice> arbitrary_lattice(int universe_bits) {
  return Gen<lattice::FiniteLattice>(
      [universe_bits](std::mt19937& rng) { return random_lattice(universe_bits, rng); });
}

lattice::LatticeClosure random_closure(const lattice::FiniteLattice& lattice,
                                       std::mt19937& rng) {
  return lattice::LatticeClosure::random(lattice, rng);
}

std::pair<lattice::LatticeClosure, lattice::LatticeClosure> random_closure_pair(
    const lattice::FiniteLattice& lattice, std::mt19937& rng) {
  // cl2 from a random closed set; cl1 from a superset of it. More closed
  // elements make a pointwise-smaller closure, so cl1 ≤ cl2.
  std::bernoulli_distribution in_set(0.4);
  std::vector<lattice::Elem> closed2, closed1;
  for (lattice::Elem a = 0; a < lattice.size(); ++a) {
    if (in_set(rng)) closed2.push_back(a);
  }
  closed1 = closed2;
  for (lattice::Elem a = 0; a < lattice.size(); ++a) {
    if (in_set(rng)) closed1.push_back(a);
  }
  auto cl1 = lattice::LatticeClosure::from_closed_set(lattice, std::move(closed1));
  auto cl2 = lattice::LatticeClosure::from_closed_set(lattice, std::move(closed2));
  SLAT_ASSERT(cl1.pointwise_leq(cl2));
  return {std::move(cl1), std::move(cl2)};
}

namespace {

// A dyadic grid weight: k/grid for k ∈ [0, grid]. The grid keeps every
// LimAvg/DiscSum intermediate sum exact (quant/value_function.hpp).
double pick_weight(std::mt19937& rng, int grid) {
  return static_cast<double>(pick_int(rng, 0, grid)) / static_cast<double>(grid);
}

quant::ValueFn pick_value_fn(std::mt19937& rng, const WeightedNbaDomain& domain) {
  if (!domain.all_value_fns) return domain.fixed_fn;
  const int i = pick_int(rng, 0, static_cast<int>(std::size(quant::kAllValueFns)) - 1);
  return quant::kAllValueFns[i];
}

double pick_discount(std::mt19937& rng, const WeightedNbaDomain& domain,
                     quant::ValueFn fn) {
  if (fn != quant::ValueFn::kDiscSum || !domain.random_discount) return domain.discount;
  return pick_int(rng, 0, 1) == 0 ? 0.5 : 0.75;
}

// Attach weights to a drawn transition structure. `floor_of` (may be null)
// gives a per-edge lower bound, used to draw the dominating half of a
// monotone pair.
quant::WeightedNba attach_weights(const buchi::Nba& nba, quant::ValueFn fn,
                                  double discount, int grid, std::mt19937& rng,
                                  const quant::WeightedNba* floor_of) {
  quant::WeightedNba out(nba.alphabet(), nba.num_states(), nba.initial(), fn, discount,
                         0.0, 1.0);
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    out.nba().set_accepting(q, nba.is_accepting(q));
    for (words::Sym s = 0; s < nba.alphabet().size(); ++s) {
      const auto succ = nba.successors(q, s);
      for (std::size_t i = 0; i < succ.size(); ++i) {
        double wt = pick_weight(rng, grid);
        if (floor_of != nullptr) wt = std::max(wt, floor_of->weights(q, s)[i]);
        out.add_transition(q, s, succ[i], wt);
      }
    }
  }
  return out;
}

}  // namespace

Gen<quant::WeightedNba> arbitrary_weighted_nba(const WeightedNbaDomain& domain) {
  return Gen<quant::WeightedNba>([domain](std::mt19937& rng) {
    const buchi::Nba nba = arbitrary_nba(domain.nba)(rng);
    const quant::ValueFn fn = pick_value_fn(rng, domain);
    const double discount = pick_discount(rng, domain, fn);
    return attach_weights(nba, fn, discount, domain.weight_grid, rng, nullptr);
  });
}

Gen<quant::WeightLasso> arbitrary_weight_lasso(const WeightLassoDomain& domain) {
  return Gen<quant::WeightLasso>([domain](std::mt19937& rng) {
    quant::WeightLasso lasso;
    lasso.prefix.resize(pick_int(rng, 0, domain.max_prefix));
    lasso.period.resize(pick_int(rng, 1, domain.max_period));
    for (double& w : lasso.prefix) w = pick_weight(rng, domain.weight_grid);
    for (double& w : lasso.period) w = pick_weight(rng, domain.weight_grid);
    return lasso;
  });
}

Gen<std::pair<quant::WeightedNba, quant::WeightedNba>> arbitrary_weighted_nba_pair(
    const WeightedNbaDomain& domain) {
  return Gen<std::pair<quant::WeightedNba, quant::WeightedNba>>(
      [domain](std::mt19937& rng) {
        const buchi::Nba nba = arbitrary_nba(domain.nba)(rng);
        const quant::ValueFn fn = pick_value_fn(rng, domain);
        const double discount = pick_discount(rng, domain, fn);
        quant::WeightedNba lo =
            attach_weights(nba, fn, discount, domain.weight_grid, rng, nullptr);
        quant::WeightedNba hi =
            attach_weights(nba, fn, discount, domain.weight_grid, rng, &lo);
        return std::make_pair(std::move(lo), std::move(hi));
      });
}

}  // namespace slat::qc
