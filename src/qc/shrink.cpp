#include "qc/shrink.hpp"

#include <algorithm>

#include "words/alphabet.hpp"

namespace slat::qc {

namespace {

using buchi::Nba;
using rabin::RabinTreeAutomaton;
using words::UpWord;
using words::Word;

/// `nba` without state `victim` (≠ initial): states above shift down by one,
/// transitions touching the victim disappear.
Nba drop_state(const Nba& nba, buchi::State victim) {
  const auto remap = [victim](buchi::State q) { return q > victim ? q - 1 : q; };
  Nba out(nba.alphabet(), nba.num_states() - 1, remap(nba.initial()));
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    if (q == victim) continue;
    out.set_accepting(remap(q), nba.is_accepting(q));
    for (words::Sym s = 0; s < nba.alphabet().size(); ++s) {
      for (buchi::State to : nba.successors(q, s)) {
        if (to != victim) out.add_transition(remap(q), s, remap(to));
      }
    }
  }
  return out;
}

/// `nba` with the (from, s, index)-th transition removed.
Nba drop_transition(const Nba& nba, buchi::State from, words::Sym sym, int index) {
  Nba out(nba.alphabet(), nba.num_states(), nba.initial());
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    out.set_accepting(q, nba.is_accepting(q));
    for (words::Sym s = 0; s < nba.alphabet().size(); ++s) {
      const auto& succs = nba.successors(q, s);
      for (int i = 0; i < static_cast<int>(succs.size()); ++i) {
        if (q == from && s == sym && i == index) continue;
        out.add_transition(q, s, succs[i]);
      }
    }
  }
  return out;
}

/// `nba` restricted to the first `keep_symbols` alphabet letters.
Nba drop_symbols(const Nba& nba, int keep_symbols) {
  Nba out(words::Alphabet::of_size(keep_symbols), nba.num_states(), nba.initial());
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    out.set_accepting(q, nba.is_accepting(q));
    for (words::Sym s = 0; s < keep_symbols; ++s) {
      for (buchi::State to : nba.successors(q, s)) out.add_transition(q, s, to);
    }
  }
  return out;
}

RabinTreeAutomaton rebuild_rabin(
    const RabinTreeAutomaton& in, int skip_state, buchi::State skip_from,
    words::Sym skip_sym, int skip_tuple, int skip_pair,
    std::pair<int, rabin::State> clear_green, std::pair<int, rabin::State> clear_red) {
  const auto remap = [skip_state](rabin::State q) {
    return skip_state >= 0 && q > skip_state ? q - 1 : q;
  };
  const int n = in.num_states() - (skip_state >= 0 ? 1 : 0);
  RabinTreeAutomaton out(in.alphabet(), in.branching(), n, remap(in.initial()));
  for (rabin::State q = 0; q < in.num_states(); ++q) {
    if (q == skip_state) continue;
    for (words::Sym s = 0; s < in.alphabet().size(); ++s) {
      const auto& tuples = in.transitions(q, s);
      for (int i = 0; i < static_cast<int>(tuples.size()); ++i) {
        if (q == skip_from && s == skip_sym && i == skip_tuple) continue;
        rabin::Tuple mapped;
        bool uses_victim = false;
        for (rabin::State t : tuples[i]) {
          if (t == skip_state) uses_victim = true;
          mapped.push_back(remap(t));
        }
        if (!uses_victim) out.add_transition(remap(q), s, std::move(mapped));
      }
    }
  }
  for (int p = 0; p < in.num_pairs(); ++p) {
    if (p == skip_pair) continue;
    std::vector<rabin::State> greens, reds;
    for (rabin::State q = 0; q < in.num_states(); ++q) {
      if (q == skip_state) continue;
      if (in.pair(p).green[q] && !(p == clear_green.first && q == clear_green.second)) {
        greens.push_back(remap(q));
      }
      if (in.pair(p).red[q] && !(p == clear_red.first && q == clear_red.second)) {
        reds.push_back(remap(q));
      }
    }
    out.add_pair(greens, reds);
  }
  return out;
}

}  // namespace

std::vector<Nba> shrink_steps(const Nba& nba) {
  std::vector<Nba> out;
  // Most aggressive first: drop whole states (never the initial one, and
  // never the last accepting one).
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    if (q == nba.initial()) continue;
    if (nba.is_accepting(q) && nba.num_accepting() == 1) continue;
    out.push_back(drop_state(nba, q));
  }
  // Shrink the alphabet to its first symbols.
  for (int keep = 1; keep < nba.alphabet().size(); ++keep) {
    out.push_back(drop_symbols(nba, keep));
  }
  // Drop single transitions.
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    for (words::Sym s = 0; s < nba.alphabet().size(); ++s) {
      for (int i = 0; i < static_cast<int>(nba.successors(q, s).size()); ++i) {
        out.push_back(drop_transition(nba, q, s, i));
      }
    }
  }
  // Clear accepting bits (keep ≥ 1).
  if (nba.num_accepting() > 1) {
    for (buchi::State q = 0; q < nba.num_states(); ++q) {
      if (!nba.is_accepting(q)) continue;
      Nba cleared = nba;
      cleared.set_accepting(q, false);
      out.push_back(std::move(cleared));
    }
  }
  return out;
}

std::vector<UpWord> shrink_steps(const UpWord& word) {
  std::vector<UpWord> out;
  const Word& prefix = word.prefix();
  const Word& period = word.period();
  // Drop the whole prefix, then each single letter.
  if (!prefix.empty()) {
    out.emplace_back(Word{}, period);
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      Word p = prefix;
      p.erase(p.begin() + i);
      out.emplace_back(std::move(p), period);
    }
  }
  // Halve the period, then drop each single letter (keeping it non-empty).
  if (period.size() >= 2) {
    out.emplace_back(prefix, Word(period.begin(), period.begin() + period.size() / 2));
    for (std::size_t i = 0; i < period.size(); ++i) {
      Word p = period;
      p.erase(p.begin() + i);
      out.emplace_back(prefix, std::move(p));
    }
  }
  // Lower symbols toward 0.
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i] > 0) {
      Word p = prefix;
      p[i] = 0;
      out.emplace_back(std::move(p), period);
    }
  }
  for (std::size_t i = 0; i < period.size(); ++i) {
    if (period[i] > 0) {
      Word p = period;
      p[i] = 0;
      out.emplace_back(prefix, std::move(p));
    }
  }
  return out;
}

std::vector<RabinTreeAutomaton> shrink_steps(const RabinTreeAutomaton& automaton) {
  constexpr std::pair<int, rabin::State> kNone{-1, -1};
  std::vector<RabinTreeAutomaton> out;
  for (rabin::State q = 0; q < automaton.num_states(); ++q) {
    if (q == automaton.initial()) continue;
    out.push_back(rebuild_rabin(automaton, q, -1, -1, -1, -1, kNone, kNone));
  }
  for (int p = 0; automaton.num_pairs() > 1 && p < automaton.num_pairs(); ++p) {
    out.push_back(rebuild_rabin(automaton, -1, -1, -1, -1, p, kNone, kNone));
  }
  for (rabin::State q = 0; q < automaton.num_states(); ++q) {
    for (words::Sym s = 0; s < automaton.alphabet().size(); ++s) {
      for (int i = 0; i < static_cast<int>(automaton.transitions(q, s).size()); ++i) {
        out.push_back(rebuild_rabin(automaton, -1, q, s, i, -1, kNone, kNone));
      }
    }
  }
  for (int p = 0; p < automaton.num_pairs(); ++p) {
    for (rabin::State q = 0; q < automaton.num_states(); ++q) {
      if (automaton.pair(p).green[q]) {
        out.push_back(rebuild_rabin(automaton, -1, -1, -1, -1, -1, {p, q}, kNone));
      }
      if (automaton.pair(p).red[q]) {
        out.push_back(rebuild_rabin(automaton, -1, -1, -1, -1, -1, kNone, {p, q}));
      }
    }
  }
  return out;
}

std::vector<ltl::FormulaId> shrink_steps(ltl::LtlArena& arena, ltl::FormulaId f) {
  const ltl::FormulaNode& node = arena.node(f);
  std::vector<ltl::FormulaId> out;
  // Constants first (smallest possible formulas), then children, then
  // operator weakenings.
  if (node.op != ltl::Op::kTrue) out.push_back(arena.tru());
  if (node.op != ltl::Op::kFalse) out.push_back(arena.fls());
  if (node.lhs >= 0) out.push_back(node.lhs);
  if (node.rhs >= 0) out.push_back(node.rhs);
  switch (node.op) {
    case ltl::Op::kUntil:
      out.push_back(arena.eventually(node.rhs));  // drop the left obligation
      break;
    case ltl::Op::kRelease:
      out.push_back(arena.always(node.rhs));
      break;
    case ltl::Op::kImplies:
      out.push_back(arena.disj(arena.negation(node.lhs), node.rhs));
      break;
    default:
      break;
  }
  return out;
}

std::vector<trees::CtlId> shrink_steps(trees::CtlArena& arena, trees::CtlId f) {
  const trees::CtlNode& node = arena.node(f);
  std::vector<trees::CtlId> out;
  if (node.op != trees::CtlOp::kTrue) out.push_back(arena.tru());
  if (node.op != trees::CtlOp::kFalse) out.push_back(arena.fls());
  if (node.lhs >= 0) out.push_back(node.lhs);
  if (node.rhs >= 0) out.push_back(node.rhs);
  switch (node.op) {
    case trees::CtlOp::kEU:
      out.push_back(arena.ef(node.rhs));
      break;
    case trees::CtlOp::kAU:
      out.push_back(arena.af(node.rhs));
      break;
    case trees::CtlOp::kER:
      out.push_back(arena.eg(node.rhs));
      break;
    case trees::CtlOp::kAR:
      out.push_back(arena.ag(node.rhs));
      break;
    default:
      break;
  }
  return out;
}

std::vector<quant::WeightedNba> shrink_steps(const quant::WeightedNba& aut) {
  const Nba& nba = aut.nba();
  // Rebuild with an edited structure/weight table; every candidate keeps
  // value function, discount and weight domain, so shrunk automata stay in
  // the generator's domain.
  const auto rebuild = [&](int skip_state, buchi::State skip_from, words::Sym skip_sym,
                           int skip_index, int keep_symbols, buchi::State floor_from,
                           words::Sym floor_sym, int floor_index) {
    const auto remap = [skip_state](buchi::State q) {
      return skip_state >= 0 && q > skip_state ? q - 1 : q;
    };
    const int n = nba.num_states() - (skip_state >= 0 ? 1 : 0);
    quant::WeightedNba out(keep_symbols == nba.alphabet().size()
                               ? nba.alphabet()
                               : words::Alphabet::of_size(keep_symbols),
                           n, remap(nba.initial()), aut.value_fn(), aut.discount(),
                           aut.domain_min(), aut.domain_max());
    for (buchi::State q = 0; q < nba.num_states(); ++q) {
      if (q == skip_state) continue;
      out.nba().set_accepting(remap(q), nba.is_accepting(q));
      for (words::Sym s = 0; s < keep_symbols; ++s) {
        const auto succ = nba.successors(q, s);
        const auto wts = aut.weights(q, s);
        for (int i = 0; i < static_cast<int>(succ.size()); ++i) {
          if (succ[i] == skip_state) continue;
          if (q == skip_from && s == skip_sym && i == skip_index) continue;
          const bool floored = q == floor_from && s == floor_sym && i == floor_index;
          out.add_transition(remap(q), s, remap(succ[i]),
                             floored ? aut.domain_min() : wts[i]);
        }
      }
    }
    return out;
  };
  const int sigma = nba.alphabet().size();
  std::vector<quant::WeightedNba> out;
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    if (q == nba.initial()) continue;
    out.push_back(rebuild(q, -1, -1, -1, sigma, -1, -1, -1));
  }
  for (int keep = 1; keep < sigma; ++keep) {
    out.push_back(rebuild(-1, -1, -1, -1, keep, -1, -1, -1));
  }
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    for (words::Sym s = 0; s < sigma; ++s) {
      const auto succ = nba.successors(q, s);
      const auto wts = aut.weights(q, s);
      for (int i = 0; i < static_cast<int>(succ.size()); ++i) {
        out.push_back(rebuild(-1, q, s, i, sigma, -1, -1, -1));
        if (wts[i] != aut.domain_min()) {
          out.push_back(rebuild(-1, -1, -1, -1, sigma, q, s, i));
        }
      }
    }
  }
  return out;
}

std::vector<quant::WeightLasso> shrink_steps(const quant::WeightLasso& lasso) {
  std::vector<quant::WeightLasso> out;
  // Drop prefix entries from the back.
  for (int keep = 0; keep < static_cast<int>(lasso.prefix.size()); ++keep) {
    quant::WeightLasso c = lasso;
    c.prefix.resize(keep);
    out.push_back(std::move(c));
  }
  // Halve, then singly shorten, the period (kept non-empty).
  if (lasso.period.size() > 1) {
    quant::WeightLasso half = lasso;
    half.period.resize(lasso.period.size() / 2);
    out.push_back(std::move(half));
    quant::WeightLasso shorter = lasso;
    shorter.period.pop_back();
    out.push_back(std::move(shorter));
  }
  // Lower individual weights to 0.
  for (std::size_t i = 0; i < lasso.prefix.size(); ++i) {
    if (lasso.prefix[i] == 0.0) continue;
    quant::WeightLasso c = lasso;
    c.prefix[i] = 0.0;
    out.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < lasso.period.size(); ++i) {
    if (lasso.period[i] == 0.0) continue;
    quant::WeightLasso c = lasso;
    c.period[i] = 0.0;
    out.push_back(std::move(c));
  }
  return out;
}

Nba shrink_nba(const Nba& nba, const std::function<bool(const Nba&)>& still_fails) {
  return shrink<Nba>(
      nba, [](const Nba& value) { return shrink_steps(value); }, still_fails);
}

UpWord shrink_up_word(const UpWord& word,
                      const std::function<bool(const UpWord&)>& still_fails) {
  return shrink<UpWord>(
      word, [](const UpWord& value) { return shrink_steps(value); }, still_fails);
}

RabinTreeAutomaton shrink_rabin(
    const RabinTreeAutomaton& automaton,
    const std::function<bool(const RabinTreeAutomaton&)>& still_fails) {
  return shrink<RabinTreeAutomaton>(
      automaton, [](const RabinTreeAutomaton& value) { return shrink_steps(value); },
      still_fails);
}

ltl::FormulaId shrink_formula(ltl::LtlArena& arena, ltl::FormulaId f,
                              const std::function<bool(ltl::FormulaId)>& still_fails) {
  return shrink<ltl::FormulaId>(
      f, [&arena](const ltl::FormulaId& value) { return shrink_steps(arena, value); },
      [&still_fails](const ltl::FormulaId& value) { return still_fails(value); });
}

quant::WeightedNba shrink_weighted_nba(
    const quant::WeightedNba& aut,
    const std::function<bool(const quant::WeightedNba&)>& still_fails) {
  return shrink<quant::WeightedNba>(
      aut, [](const quant::WeightedNba& value) { return shrink_steps(value); },
      still_fails);
}

quant::WeightLasso shrink_weight_lasso(
    const quant::WeightLasso& lasso,
    const std::function<bool(const quant::WeightLasso&)>& still_fails) {
  return shrink<quant::WeightLasso>(
      lasso, [](const quant::WeightLasso& value) { return shrink_steps(value); },
      still_fails);
}

}  // namespace slat::qc
