#include "qc/seed.hpp"

#include <atomic>
#include <cstdlib>

namespace slat::qc {
namespace {

std::uint64_t read_env_seed() {
  const char* env = std::getenv("SLAT_SEED");
  if (env == nullptr || *env == '\0') return kDefaultSeed;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return kDefaultSeed;
  return static_cast<std::uint64_t>(value);
}

std::atomic<bool>& used_flag() {
  static std::atomic<bool> used{false};
  return used;
}

}  // namespace

std::uint64_t seed() {
  static const std::uint64_t cached = read_env_seed();
  return cached;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t derive(std::uint64_t base, std::string_view stream) {
  std::uint64_t h = splitmix64(base);
  std::uint64_t word = 0;
  int lane = 0;
  for (const unsigned char c : stream) {
    word = word << 8 | c;
    if (++lane == 8) {
      h = splitmix64(h ^ word);
      word = 0;
      lane = 0;
    }
  }
  // Length-prefix the tail so "ab"+"" and "a"+"b" cannot collide.
  h = splitmix64(h ^ word);
  return splitmix64(h ^ stream.size());
}

std::mt19937 make_rng(std::string_view stream) {
  used_flag().store(true, std::memory_order_relaxed);
  return make_rng(derive(seed(), stream));
}

std::mt19937 make_rng(std::uint64_t explicit_seed) {
  used_flag().store(true, std::memory_order_relaxed);
  std::seed_seq seq{static_cast<std::uint32_t>(explicit_seed),
                    static_cast<std::uint32_t>(explicit_seed >> 32)};
  return std::mt19937(seq);
}

bool rng_was_used() { return used_flag().load(std::memory_order_relaxed); }

void reset_rng_used() { used_flag().store(false, std::memory_order_relaxed); }

std::string repro_line() { return "SLAT_SEED=" + std::to_string(seed()); }

}  // namespace slat::qc
