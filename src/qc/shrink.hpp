// Greedy shrinking: minimize a failing input against the violated oracle
// before any human reads it.
//
// Each type exposes a one-step candidate function (all the "slightly
// smaller" variants of a value, ordered most-aggressive first); `shrink`
// repeatedly replaces the current value by the first candidate that still
// fails, until no candidate does — a greedy descent to a locally minimal
// counterexample. Every candidate preserves the generator's well-formedness
// invariants (valid indices, initial state present, ≥ 1 accepting state /
// pair where the domain requires one), so shrunk artifacts stay inside the
// tested domain; shrink_test.cpp asserts exactly this.
#pragma once

#include <functional>
#include <vector>

#include "buchi/nba.hpp"
#include "ltl/formula.hpp"
#include "quant/weighted.hpp"
#include "rabin/rabin_tree_automaton.hpp"
#include "trees/ctl.hpp"
#include "words/up_word.hpp"

namespace slat::qc {

/// Greedy minimization: while some candidate of `step(value)` satisfies
/// `still_fails`, descend into the first one. `max_steps` bounds the total
/// number of predicate evaluations (the descent is finite anyway for
/// size-decreasing steps; the bound guards accidental plateaus).
template <typename T>
T shrink(T value, const std::function<std::vector<T>(const T&)>& step,
         const std::function<bool(const T&)>& still_fails, int max_steps = 2000) {
  int budget = max_steps;
  bool progressed = true;
  while (progressed && budget > 0) {
    progressed = false;
    for (T& candidate : step(value)) {
      if (--budget <= 0) break;
      if (still_fails(candidate)) {
        value = std::move(candidate);
        progressed = true;
        break;
      }
    }
  }
  return value;
}

// ---------------------------------------------------------------------------
// One-step candidates per type
// ---------------------------------------------------------------------------

/// NBA candidates: drop a non-initial state (transitions remapped), drop a
/// single transition, clear an accepting bit (never the last one), drop the
/// last alphabet symbol (if ≥ 2). All candidates keep the initial state and
/// at least one accepting state.
std::vector<buchi::Nba> shrink_steps(const buchi::Nba& nba);

/// UP-word candidates: drop prefix letters (from the back), halve/shorten
/// the period (kept non-empty), lower a symbol toward 0.
std::vector<words::UpWord> shrink_steps(const words::UpWord& word);

/// Rabin candidates: drop a non-initial state, drop a transition tuple,
/// drop an acceptance pair (never the last one), clear a single green/red
/// bit.
std::vector<rabin::RabinTreeAutomaton> shrink_steps(
    const rabin::RabinTreeAutomaton& automaton);

/// LTL formula candidates: replace the root by a child, by true/false;
/// weaken temporal operators (U → its rhs, R → its rhs, X/F/G → operand).
std::vector<ltl::FormulaId> shrink_steps(ltl::LtlArena& arena, ltl::FormulaId f);

/// CTL formula candidates, mirroring the LTL steps.
std::vector<trees::CtlId> shrink_steps(trees::CtlArena& arena, trees::CtlId f);

/// Weighted-automaton candidates: drop a non-initial state (transitions
/// remapped, weights carried along), drop a single weighted transition,
/// lower one weight to the domain minimum, drop the last alphabet symbol
/// (if ≥ 2). Value function, discount and weight domain are preserved, and
/// every surviving weight stays in [domain_min, domain_max].
std::vector<quant::WeightedNba> shrink_steps(const quant::WeightedNba& aut);

/// Weight-lasso candidates: drop prefix entries (from the back), halve /
/// shorten the period (kept non-empty), lower a weight to 0.
std::vector<quant::WeightLasso> shrink_steps(const quant::WeightLasso& lasso);

/// Convenience: shrink an NBA against a failing predicate.
buchi::Nba shrink_nba(const buchi::Nba& nba,
                      const std::function<bool(const buchi::Nba&)>& still_fails);

/// Convenience: shrink an UP-word against a failing predicate.
words::UpWord shrink_up_word(const words::UpWord& word,
                             const std::function<bool(const words::UpWord&)>& still_fails);

/// Convenience: shrink a Rabin automaton against a failing predicate.
rabin::RabinTreeAutomaton shrink_rabin(
    const rabin::RabinTreeAutomaton& automaton,
    const std::function<bool(const rabin::RabinTreeAutomaton&)>& still_fails);

/// Convenience: shrink an LTL formula against a failing predicate.
ltl::FormulaId shrink_formula(ltl::LtlArena& arena, ltl::FormulaId f,
                              const std::function<bool(ltl::FormulaId)>& still_fails);

/// Convenience: shrink a weighted automaton against a failing predicate.
quant::WeightedNba shrink_weighted_nba(
    const quant::WeightedNba& aut,
    const std::function<bool(const quant::WeightedNba&)>& still_fails);

/// Convenience: shrink a weight lasso against a failing predicate.
quant::WeightLasso shrink_weight_lasso(
    const quant::WeightLasso& lasso,
    const std::function<bool(const quant::WeightLasso&)>& still_fails);

}  // namespace slat::qc
