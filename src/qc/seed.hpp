// Seed-deterministic randomness for every randomized test, property sweep,
// and fuzz run in the repository (the `slat::qc` subsystem).
//
// One process-wide base seed governs everything: `seed()` reads SLAT_SEED
// from the environment (any failure printed by the harness includes a
// one-line `SLAT_SEED=<n>` string, so re-running under that variable
// replays the exact inputs), falling back to a fixed default so CI is
// deterministic. Independent streams are carved out of the base seed by
// name via splitmix64, so adding a new randomized test never perturbs the
// draws of an existing one — the classic "test ordering changes the RNG"
// hazard of a single shared generator.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace slat::qc {

/// The default base seed (used when SLAT_SEED is unset): the paper's
/// conference date, so default runs are stable across sessions.
inline constexpr std::uint64_t kDefaultSeed = 20030713;

/// The process-wide base seed: SLAT_SEED if set (parsed as u64; a value
/// that does not parse falls back to the default), else kDefaultSeed.
/// Read once and cached.
std::uint64_t seed();

/// splitmix64 — the standard 64-bit finalizer; bijective, so distinct
/// inputs give distinct (and well-scrambled) outputs.
std::uint64_t splitmix64(std::uint64_t x);

/// A child seed for the named stream: hashes `stream` into `base` with
/// splitmix64 steps. Deterministic; distinct names give independent
/// streams for any base.
std::uint64_t derive(std::uint64_t base, std::string_view stream);

/// An mt19937 for the named stream of the process-wide base seed. Marks
/// the process "rng was used" so the gtest failure listener knows to print
/// the repro line.
std::mt19937 make_rng(std::string_view stream);

/// An mt19937 from an explicit 64-bit seed (both words feed the seed_seq).
std::mt19937 make_rng(std::uint64_t explicit_seed);

/// Has make_rng been called in this process? (Failure listeners print the
/// SLAT_SEED repro line only for tests that actually drew randomness.)
bool rng_was_used();
void reset_rng_used();

/// The one-line repro string, e.g. "SLAT_SEED=20030713".
std::string repro_line();

}  // namespace slat::qc
