#include "qc/properties.hpp"

#include <bit>
#include <functional>
#include <utility>

#include "buchi/inclusion.hpp"
#include "buchi/language.hpp"
#include "buchi/nba.hpp"
#include "buchi/safety.hpp"
#include "buchi/symbolic.hpp"
#include "core/memo_cache.hpp"
#include "core/thread_pool.hpp"
#include "lattice/closure.hpp"
#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "lattice/finite_lattice.hpp"
#include "ltl/eval.hpp"
#include "ltl/syntactic.hpp"
#include "ltl/translate.hpp"
#include "monitor/dfa_monitor.hpp"
#include "monitor/fleet.hpp"
#include "monitor/monitor.hpp"
#include "monitor/traffic.hpp"
#include "qc/gen.hpp"
#include "qc/seed.hpp"
#include "qc/shrink.hpp"
#include "quant/closure.hpp"
#include "quant/decomposition.hpp"
#include "quant/embed.hpp"
#include "quant/eval.hpp"
#include "quant/value_function.hpp"
#include "quant/weighted.hpp"
#include "rabin/from_ctl.hpp"
#include "rabin/rabin_tree_automaton.hpp"
#include "trees/ctl.hpp"
#include "words/up_word.hpp"

namespace slat::qc {
namespace {

using buchi::Nba;
using words::UpWord;

// Small domains keep every trial fast enough for the fuzz-smoke budget;
// the expensive oracles (rank complementation, emptiness games) are
// exponential, so the sizes below are deliberate, not arbitrary.
const NbaDomain kSmallNba{2, 5, 2, 2, 0.6, 1.5, 0.2, 0.6};
const NbaDomain kTinyNba{2, 3, 2, 2, 0.6, 1.4, 0.2, 0.6};

PropertyResult ok() { return {}; }

/// Generate one NBA, check a unary language law, shrink on failure.
PropertyResult nba_law(std::uint64_t trial_seed, const NbaDomain& domain,
                       const char* law, const std::function<bool(const Nba&)>& holds) {
  std::mt19937 rng = make_rng(trial_seed);
  const Nba nba = arbitrary_nba(domain)(rng);
  if (holds(nba)) return ok();
  const Nba shrunk = shrink_nba(nba, [&](const Nba& c) { return !holds(c); });
  PropertyResult r;
  r.ok = false;
  r.digest = buchi::fingerprint(nba);
  r.message = std::string(law) + "\nshrunk counterexample:\n" + shrunk.to_string();
  return r;
}

/// A modest UP-word corpus over the automaton/formula's own alphabet.
std::vector<UpWord> corpus_for(int alphabet_size) {
  return words::enumerate_up_words(alphabet_size, 2, 2);
}

// --- Büchi: the lcl closure laws (§2.4 / §3 definition of closure) --------

PropertyResult lcl_extensive(std::uint64_t trial_seed) {
  return nba_law(trial_seed, kSmallNba, "lcl extensivity: L(B) ⊆ L(lcl B) violated",
                 [](const Nba& nba) {
                   return buchi::is_subset(nba, buchi::safety_closure(nba));
                 });
}

PropertyResult lcl_idempotent(std::uint64_t trial_seed) {
  return nba_law(trial_seed, kSmallNba,
                 "lcl idempotence: L(lcl lcl B) = L(lcl B) violated", [](const Nba& nba) {
                   const Nba once = buchi::safety_closure(nba);
                   return buchi::is_equivalent(buchi::safety_closure(once), once);
                 });
}

PropertyResult lcl_monotone(std::uint64_t trial_seed) {
  // L(A ∩ B) ⊆ L(A), so lcl(A ∩ B) ⊆ lcl(A) must follow; shrink over A
  // with B held fixed.
  std::mt19937 rng = make_rng(trial_seed);
  const Nba a = arbitrary_nba(kSmallNba)(rng);
  const Nba b = arbitrary_nba(kSmallNba)(rng);
  const auto holds = [&b](const Nba& lhs) {
    return buchi::is_subset(buchi::safety_closure(buchi::intersect(lhs, b)),
                            buchi::safety_closure(lhs));
  };
  if (holds(a)) return ok();
  const Nba shrunk = shrink_nba(a, [&](const Nba& c) {
    return c.alphabet().size() == b.alphabet().size() && !holds(c);
  });
  PropertyResult r;
  r.ok = false;
  r.digest = buchi::fingerprint(a);
  r.message = "lcl monotonicity: lcl(L(A)∩L(B)) ⊆ lcl(L(A)) violated\nshrunk A:\n" +
              shrunk.to_string() + "fixed B:\n" + b.to_string();
  return r;
}

// --- Büchi: CSR transition layout (PR6) ------------------------------------

PropertyResult csr_roundtrip(std::uint64_t trial_seed) {
  // Metamorphic: reading every successor slice back through the CSR and
  // re-inserting it into a fresh automaton must reproduce the structure
  // EXACTLY — same content digest, same transition count — and the two
  // copies must keep agreeing after identical mutations through the lazy
  // rebuild path (read, then append, then read again).
  return nba_law(
      trial_seed, kSmallNba,
      "CSR roundtrip: build → read slices → rebuild must be structurally identical",
      [](const Nba& nba) {
        Nba rebuilt(nba.alphabet(), nba.num_states(), nba.initial());
        for (buchi::State q = 0; q < nba.num_states(); ++q) {
          rebuilt.set_accepting(q, nba.is_accepting(q));
          for (words::Sym s = 0; s < nba.alphabet().size(); ++s) {
            for (buchi::State t : nba.successors(q, s)) {
              rebuilt.add_transition(q, s, t);
            }
          }
        }
        if (!(buchi::fingerprint(rebuilt) == buchi::fingerprint(nba))) return false;
        if (rebuilt.num_transitions() != nba.num_transitions()) return false;
        // Append after the read above forced a CSR build: the pending-edge
        // merge must land both copies in the same slices.
        Nba grown = nba;
        const buchi::State fresh = grown.add_state();
        if (fresh != rebuilt.add_state()) return false;
        grown.add_transition(grown.initial(), 0, fresh);
        rebuilt.add_transition(rebuilt.initial(), 0, fresh);
        return buchi::fingerprint(grown) == buchi::fingerprint(rebuilt);
      });
}

// --- Büchi: Theorem 1/2 decomposition --------------------------------------

PropertyResult decomposition_identity(std::uint64_t trial_seed) {
  return nba_law(trial_seed, kSmallNba,
                 "decomposition identity: L(B) = L(B_S) ∩ L(B_L) violated",
                 [](const Nba& nba) {
                   const buchi::BuchiDecomposition d = buchi::decompose(nba);
                   return buchi::is_equivalent(buchi::intersect(d.safety, d.liveness),
                                               nba);
                 });
}

PropertyResult decomposition_parts(std::uint64_t trial_seed) {
  return nba_law(trial_seed, kTinyNba,
                 "decomposition parts: B_S must be safety, B_L liveness, pair "
                 "machine closed",
                 [](const Nba& nba) {
                   const buchi::BuchiDecomposition d = buchi::decompose(nba);
                   return buchi::is_safety(d.safety) && buchi::is_liveness(d.liveness) &&
                          buchi::is_machine_closed(d.safety, d.liveness);
                 });
}

// --- Büchi: antichain engine vs complement oracle (inclusion PR) ----------

PropertyResult inclusion_differential(std::uint64_t trial_seed) {
  std::mt19937 rng = make_rng(trial_seed);
  const Nba lhs = arbitrary_nba(kTinyNba)(rng);
  const Nba rhs = arbitrary_nba(kTinyNba)(rng);
  const auto agree = [&rhs](const Nba& l) {
    core::CacheEnabledScope no_cache(false);  // force both engines to compute
    buchi::InclusionResult antichain, complement;
    {
      buchi::InclusionBackendScope scope(buchi::InclusionBackend::kAntichain);
      antichain = buchi::check_inclusion(l, rhs);
    }
    {
      buchi::InclusionBackendScope scope(buchi::InclusionBackend::kComplement);
      complement = buchi::check_inclusion(l, rhs);
    }
    if (antichain.included != complement.included) return false;
    // Witnesses may differ, but each must genuinely separate.
    for (const auto* r : {&antichain, &complement}) {
      if (r->counterexample.has_value() &&
          !(l.accepts(*r->counterexample) && !rhs.accepts(*r->counterexample))) {
        return false;
      }
    }
    return true;
  };
  if (agree(lhs)) return ok();
  // The shrinker may truncate the candidate's alphabet; inclusion requires a
  // common one, so such candidates are "not failing" rather than crashing.
  const Nba shrunk = shrink_nba(lhs, [&](const Nba& c) {
    return c.alphabet().size() == rhs.alphabet().size() && !agree(c);
  });
  PropertyResult r;
  r.ok = false;
  r.digest = buchi::fingerprint(lhs);
  r.message =
      "inclusion backends disagree (antichain vs complement)\nshrunk lhs:\n" +
      shrunk.to_string() + "fixed rhs:\n" + rhs.to_string();
  return r;
}

// --- Büchi: simulation quotient preserves the language --------------------

PropertyResult simulation_quotient_preserves(std::uint64_t trial_seed) {
  return nba_law(trial_seed, kSmallNba,
                 "simulation quotient changed the language", [](const Nba& nba) {
                   return buchi::is_equivalent(
                       nba, nba.reduce(buchi::ReduceMode::kSimulation));
                 });
}

// --- Cache: hits replay bit-identical artifacts (memo-cache PR) -----------

PropertyResult cache_bit_identity(std::uint64_t trial_seed) {
  return nba_law(
      trial_seed, kSmallNba, "cache on/off produced different artifacts",
      [](const Nba& nba) {
        core::Digest uncached_safety, uncached_liveness;
        {
          core::CacheEnabledScope scope(false);
          const buchi::BuchiDecomposition d = buchi::decompose(nba);
          uncached_safety = buchi::fingerprint(d.safety);
          uncached_liveness = buchi::fingerprint(d.liveness);
        }
        core::CacheEnabledScope scope(true);
        core::clear_all_caches();
        for (int round = 0; round < 2; ++round) {  // miss, then hit
          const buchi::BuchiDecomposition d = buchi::decompose(nba);
          if (!(buchi::fingerprint(d.safety) == uncached_safety) ||
              !(buchi::fingerprint(d.liveness) == uncached_liveness)) {
            return false;
          }
        }
        return true;
      });
}

// --- LTL: translation vs the exact evaluator (GPVW / §2.2) ----------------

PropertyResult formula_failure(ltl::LtlArena& arena, ltl::FormulaId original,
                               const char* law,
                               const std::function<bool(ltl::FormulaId)>& holds) {
  const ltl::FormulaId shrunk =
      shrink_formula(arena, original, [&](ltl::FormulaId c) { return !holds(c); });
  PropertyResult r;
  r.ok = false;
  r.digest = core::DigestBuilder().add_string(arena.to_string(original)).digest();
  r.message = std::string(law) + "\nshrunk formula: " + arena.to_string(shrunk) +
              "\noriginal: " + arena.to_string(original);
  return r;
}

PropertyResult translate_agrees_with_evaluator(std::uint64_t trial_seed) {
  std::mt19937 rng = make_rng(trial_seed);
  ltl::LtlArena arena(words::Alphabet::binary());
  const ltl::FormulaId f = random_formula(arena, 3, rng);
  std::vector<UpWord> corpus = corpus_for(2);
  const Gen<UpWord> wordgen = arbitrary_up_word({2, 3, 3});
  for (int i = 0; i < 4; ++i) corpus.push_back(wordgen(rng));
  const auto holds = [&](ltl::FormulaId g) {
    const Nba nba = ltl::to_nba(arena, g);
    for (const UpWord& w : corpus) {
      if (nba.accepts(w) != ltl::holds(arena, g, w)) return false;
    }
    return true;
  };
  if (holds(f)) return ok();
  return formula_failure(arena, f, "GPVW translation disagrees with the evaluator",
                         holds);
}

PropertyResult negation_complements(std::uint64_t trial_seed) {
  std::mt19937 rng = make_rng(trial_seed);
  ltl::LtlArena arena(words::Alphabet::binary());
  const ltl::FormulaId f = random_formula(arena, 3, rng);
  const std::vector<UpWord> corpus = corpus_for(2);
  const auto holds = [&](ltl::FormulaId g) {
    const Nba pos = ltl::to_nba(arena, g);
    const Nba neg = ltl::to_nba(arena, arena.negation(g));
    for (const UpWord& w : corpus) {
      if (pos.accepts(w) == neg.accepts(w)) return false;
    }
    return true;
  };
  if (holds(f)) return ok();
  return formula_failure(arena, f, "L(¬φ) fails to complement L(φ) on the corpus",
                         holds);
}

PropertyResult syntactic_fragment_sound(std::uint64_t trial_seed) {
  // Sistla's fragments are SOUND: syntactically safe formulas must be
  // semantically safe (sampled — refutation-sound, per §2.3).
  std::mt19937 rng = make_rng(trial_seed);
  ltl::LtlArena arena(words::Alphabet::binary());
  const ltl::FormulaId f = random_formula(arena, 3, rng);
  const std::vector<UpWord> corpus = corpus_for(2);
  const auto holds = [&](ltl::FormulaId g) {
    const ltl::SyntacticClass syntactic = ltl::classify_syntactic(arena, g);
    if (syntactic != ltl::SyntacticClass::kSafety &&
        syntactic != ltl::SyntacticClass::kBoth) {
      return true;  // no claim to check
    }
    const buchi::SafetyClass semantic =
        buchi::classify_sampled(ltl::to_nba(arena, g), corpus);
    return semantic == buchi::SafetyClass::kSafety ||
           semantic == buchi::SafetyClass::kSafetyAndLiveness;
  };
  if (holds(f)) return ok();
  return formula_failure(arena, f, "syntactically-safe formula is not semantically safe",
                         holds);
}

// --- Words/Büchi: the symbolic cube backend (PR9) --------------------------

PropertyResult symbolic_explicit_agreement(std::uint64_t trial_seed) {
  // The cube backend is a pure representation change: translation, safety
  // closure and the inclusion engine must agree BIT-identically with the
  // explicit pipeline after cube expansion — same fingerprints, same
  // verdicts, same witness words — and stay deterministic across worker
  // counts. Caches are disabled inside the trial so the 1- and 4-thread
  // runs both do real work.
  std::mt19937 rng = make_rng(trial_seed);
  ltl::LtlArena arena(words::Alphabet::of_aps({"p", "q", "r"}));
  const ltl::FormulaId f = random_formula(arena, 3, rng);
  const ltl::FormulaId g = random_formula(arena, 3, rng);
  const bool cache_was_enabled = core::cache_enabled();
  core::set_cache_enabled(false);
  const int threads_before = core::ThreadPool::global().num_threads();
  const auto holds = [&](ltl::FormulaId lhs) {
    const Nba el = ltl::to_nba(arena, lhs);
    const Nba eg = ltl::to_nba(arena, g);
    const buchi::SymbolicNba sl = ltl::to_nba_symbolic(arena, lhs);
    const buchi::SymbolicNba sg = ltl::to_nba_symbolic(arena, g);
    if (!(buchi::fingerprint(sl.expand()) == buchi::fingerprint(el))) return false;
    if (!(buchi::fingerprint(buchi::safety_closure(sl).expand()) ==
          buchi::fingerprint(buchi::safety_closure(el)))) {
      return false;
    }
    const buchi::InclusionResult expl = buchi::check_inclusion(el, eg);
    for (const int threads : {1, 4}) {
      core::set_num_threads(threads);
      const buchi::InclusionResult symbolic = buchi::check_inclusion(sl, sg);
      if (symbolic.included != expl.included ||
          symbolic.counterexample != expl.counterexample) {
        return false;
      }
    }
    return true;
  };
  const std::string law =
      "symbolic backend diverged from the explicit pipeline (vs fixed rhs: " +
      arena.to_string(g) + ")";
  PropertyResult result =
      holds(f) ? ok() : formula_failure(arena, f, law.c_str(), holds);
  core::set_num_threads(threads_before);
  core::set_cache_enabled(cache_was_enabled);
  return result;
}

// --- Lattice: closure laws and the §3 theorems ----------------------------

PropertyResult lattice_failure(const lattice::FiniteLattice& lattice, const char* law,
                               const std::string& detail) {
  PropertyResult r;
  r.ok = false;
  r.digest = lattice.content_digest();
  r.message = std::string(law) + "\n" + detail +
              "\nlattice size: " + std::to_string(lattice.size());
  return r;
}

PropertyResult closure_roundtrip(std::uint64_t trial_seed) {
  std::mt19937 rng = make_rng(trial_seed);
  const lattice::FiniteLattice lat = random_lattice(3, rng);
  const lattice::LatticeClosure cl = random_closure(lat, rng);
  // The closure laws hold by construction — re-validate through the
  // independent checker, then round-trip through the closed set.
  std::vector<lattice::Elem> map;
  for (lattice::Elem a = 0; a < lat.size(); ++a) map.push_back(cl.apply(a));
  if (const auto violation = lattice::LatticeClosure::violation(lat, map)) {
    return lattice_failure(lat, "closure laws violated", *violation);
  }
  const lattice::LatticeClosure rebuilt =
      lattice::LatticeClosure::from_closed_set(lat, cl.closed_elements());
  if (!(rebuilt == cl)) {
    return lattice_failure(lat, "closure ≠ from_closed_set(closed_elements())", "");
  }
  return ok();
}

PropertyResult theorem3_decomposes(std::uint64_t trial_seed) {
  // Theorem 3 needs the paper setting (modular + complemented): Boolean
  // lattices always qualify; random closure systems only sometimes, so
  // check them only when they do.
  std::mt19937 rng = make_rng(trial_seed);
  const bool use_random = std::bernoulli_distribution(0.5)(rng);
  const lattice::FiniteLattice lat =
      use_random ? random_lattice(3, rng)
                 : lattice::boolean_lattice(
                       std::uniform_int_distribution<int>(1, 4)(rng));
  if (!lat.is_paper_setting()) return ok();  // hypothesis not met — vacuous
  const auto [cl1, cl2] = random_closure_pair(lat, rng);
  if (const auto failing = lattice::verify_theorem3(lat, cl1, cl2)) {
    return lattice_failure(lat, "Theorem 3: element failed to decompose",
                           "element " + std::to_string(*failing));
  }
  return ok();
}

PropertyResult theorems5to7_hold(std::uint64_t trial_seed) {
  std::mt19937 rng = make_rng(trial_seed);
  const lattice::FiniteLattice lat =
      lattice::boolean_lattice(std::uniform_int_distribution<int>(1, 3)(rng));
  const auto [cl1, cl2] = random_closure_pair(lat, rng);
  if (lattice::verify_theorem5(lat, cl1, cl2).has_value()) {
    return lattice_failure(lat, "Theorem 5 (impossibility) violated", "");
  }
  if (lattice::verify_theorem6(lat, cl1, cl2).has_value()) {
    return lattice_failure(lat, "Theorem 6 (extremal safety) violated", "");
  }
  // Boolean lattices are distributive, so Theorem 7 applies too.
  if (lattice::verify_theorem7(lat, cl1, cl2).has_value()) {
    return lattice_failure(lat, "Theorem 7 (extremal liveness) violated", "");
  }
  return ok();
}

PropertyResult lemmas_hold(std::uint64_t trial_seed) {
  // Lemmas 3–5 need no modularity/distributivity; check them on fully
  // random lattices.
  std::mt19937 rng = make_rng(trial_seed);
  const lattice::FiniteLattice lat = random_lattice(3, rng);
  const lattice::LatticeClosure cl = random_closure(lat, rng);
  if (lattice::verify_lemma3(lat, cl).has_value()) {
    return lattice_failure(lat, "Lemma 3 (sub-meet preservation) violated", "");
  }
  if (lattice::verify_lemma4(lat, cl).has_value()) {
    return lattice_failure(lat, "Lemma 4 (join with complement is live) violated", "");
  }
  if (lattice::verify_lemma5(lat).has_value()) {
    return lattice_failure(lat, "Lemma 5 violated", "");
  }
  return ok();
}

// --- Rabin trees: rfcl laws and Theorem 9 ---------------------------------

PropertyResult rabin_failure(const rabin::RabinTreeAutomaton& original,
                             const char* law,
                             const std::function<bool(const rabin::RabinTreeAutomaton&)>&
                                 holds) {
  const rabin::RabinTreeAutomaton shrunk = shrink_rabin(
      original, [&](const rabin::RabinTreeAutomaton& c) { return !holds(c); });
  PropertyResult r;
  r.ok = false;
  r.digest = rabin::fingerprint(original);
  r.message = std::string(law) + "\nshrunk counterexample:\n" + shrunk.to_string();
  return r;
}

PropertyResult rfcl_closure_laws(std::uint64_t trial_seed) {
  std::mt19937 rng = make_rng(trial_seed);
  const rabin::RabinTreeAutomaton automaton = arbitrary_rabin({2, 4, 2, 2, 1, 2})(rng);
  const auto holds = [](const rabin::RabinTreeAutomaton& b) {
    const rabin::RabinTreeAutomaton closed = rabin::rfcl(b);
    // Extensive on the witness: a tree of L(B) stays in L(rfcl B).
    if (const auto witness = b.find_accepted_tree()) {
      if (!closed.accepts(*witness)) return false;
    }
    // Idempotent on the closure's witness.
    const rabin::RabinTreeAutomaton twice = rabin::rfcl(closed);
    if (const auto witness = closed.find_accepted_tree()) {
      if (!twice.accepts(*witness)) return false;
    }
    // Emptiness is a fixpoint of the closure: L(B) = ∅ ⟺ L(rfcl B) = ∅.
    if (b.is_empty() != closed.is_empty()) return false;
    return true;
  };
  if (holds(automaton)) return ok();
  return rabin_failure(automaton, "rfcl closure laws violated", holds);
}

PropertyResult theorem9_identity(std::uint64_t trial_seed) {
  std::mt19937 rng = make_rng(trial_seed);
  const rabin::RabinTreeAutomaton automaton = arbitrary_rabin({2, 3, 2, 2, 1, 1})(rng);
  const Gen<trees::KTree> treegen = arbitrary_ktree({2, 1, 3, 2});
  std::vector<trees::KTree> samples;
  for (int i = 0; i < 3; ++i) samples.push_back(treegen(rng));
  const auto holds = [&samples](const rabin::RabinTreeAutomaton& b) {
    const rabin::RabinDecomposition d = rabin::decompose(b);
    std::vector<trees::KTree> trees = samples;
    if (const auto witness = b.find_accepted_tree()) trees.push_back(*witness);
    for (const trees::KTree& t : trees) {
      const bool in_l = b.accepts(t);
      const bool in_meet = d.safety.accepts(t) && d.liveness_contains(t);
      if (in_l != in_meet) return false;
    }
    return true;
  };
  if (holds(automaton)) return ok();
  return rabin_failure(automaton, "Theorem 9: L(B) = L(rfcl B) ∩ live violated", holds);
}

// --- CTL: translation vs model checking (§4.3) ----------------------------

PropertyResult ctl_translation_agrees(std::uint64_t trial_seed) {
  std::mt19937 rng = make_rng(trial_seed);
  trees::CtlArena arena(words::Alphabet::binary());
  const trees::CtlId f = random_ctl(arena, 2, rng);
  const Gen<trees::KTree> treegen = arbitrary_ktree({2, 1, 3, 2});
  std::vector<trees::KTree> samples;
  for (int i = 0; i < 3; ++i) samples.push_back(treegen(rng));
  const auto holds = [&](trees::CtlId g) {
    const rabin::RabinTreeAutomaton automaton = rabin::from_ctl(arena, g, 2);
    for (const trees::KTree& t : samples) {
      if (automaton.accepts(t) != trees::holds(arena, g, t)) return false;
    }
    return true;
  };
  if (holds(f)) return ok();
  const trees::CtlId shrunk =
      shrink<trees::CtlId>(f,
                           [&arena](const trees::CtlId& g) {
                             return shrink_steps(arena, g);
                           },
                           [&](const trees::CtlId& g) { return !holds(g); });
  PropertyResult r;
  r.ok = false;
  r.digest = core::DigestBuilder().add_string(arena.to_string(f)).digest();
  r.message = "CTL→Rabin translation disagrees with the model checker\nshrunk: " +
              arena.to_string(shrunk) + "\noriginal: " + arena.to_string(f);
  return r;
}

// --- Words: UP-word normal-form laws --------------------------------------

PropertyResult upword_laws(std::uint64_t trial_seed) {
  std::mt19937 rng = make_rng(trial_seed);
  const UpWord w = arbitrary_up_word({2, 4, 4})(rng);
  const auto holds = [](const UpWord& u) {
    if (!u.is_normalized()) return false;
    // suffix law: u.suffix(k)[i] = u[k+i].
    for (std::size_t k = 0; k <= 3; ++k) {
      const UpWord s = u.suffix(k);
      for (std::size_t i = 0; i < 6; ++i) {
        if (s.at(i) != u.at(k + i)) return false;
      }
    }
    // take law: take(n)[i] = at(i).
    const words::Word t = u.take(8);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i] != u.at(i)) return false;
    }
    // Absorbing one period into the prefix denotes the same ω-word.
    words::Word longer = u.prefix();
    longer.insert(longer.end(), u.period().begin(), u.period().end());
    return UpWord(longer, u.period()) == u;
  };
  if (holds(w)) return ok();
  const UpWord shrunk = shrink_up_word(w, [&](const UpWord& c) { return !holds(c); });
  PropertyResult r;
  r.ok = false;
  core::DigestBuilder builder;
  for (const auto s : w.prefix()) builder.add_int(s);
  builder.add_int(-1);
  for (const auto s : w.period()) builder.add_int(s);
  r.digest = builder.digest();
  r.message = "UP-word normal-form laws violated\nshrunk: " +
              shrunk.to_string(words::Alphabet::binary());
  return r;
}

// --- Monitor layer (PR8): event-path verdict agreement ----------------------

/// All finite traces over [0, sigma] up to `max_len` events — sigma itself
/// is included as the out-of-alphabet probe, so the hardened event path is
/// part of the agreement surface.
std::vector<words::Word> probe_traces(int sigma, int max_len) {
  std::vector<words::Word> traces = {{}};
  std::size_t level_begin = 0;
  for (int len = 1; len <= max_len; ++len) {
    const std::size_t level_end = traces.size();
    for (std::size_t i = level_begin; i < level_end; ++i) {
      for (words::Sym s = 0; s <= sigma; ++s) {
        words::Word w = traces[i];
        w.push_back(s);
        traces.push_back(std::move(w));
      }
    }
    level_begin = level_end;
  }
  return traces;
}

/// SafetyMonitor (subset automaton), DfaMonitor (minimized DFA) and a
/// single-program MonitorFleet must return the same verdict on every probe
/// trace: same first-rejection index, verdict 0 on an empty-prefix
/// violation, deterministic rejection of out-of-alphabet events.
bool monitors_agree_on(const Nba& spec) {
  monitor::SafetyMonitor subset = monitor::SafetyMonitor::from_nba(spec);
  monitor::DfaMonitor minimal = monitor::DfaMonitor::from_nba(spec);
  monitor::MonitorFleet fleet;
  const monitor::MonitorId program = fleet.compile_nba(spec);
  for (const words::Word& trace : probe_traces(spec.alphabet().size(), 3)) {
    const auto expected = subset.run(trace);
    if (minimal.run(trace) != expected) return false;
    const monitor::SessionId session = fleet.open_session(program);
    std::optional<std::size_t> fleet_verdict;
    if (fleet.session_violated(session)) {
      fleet_verdict = 0;  // born violated: 0 events accepted
    } else {
      for (std::size_t i = 0; i < trace.size(); ++i) {
        if (!fleet.step(session, trace[i])) {
          fleet_verdict = i;
          break;
        }
      }
    }
    if (fleet_verdict != expected) return false;
  }
  return true;
}

PropertyResult monitor_agreement(std::uint64_t trial_seed) {
  return nba_law(trial_seed, kTinyNba,
                 "monitor agreement: SafetyMonitor / DfaMonitor / fleet verdicts "
                 "diverged on a probe trace",
                 monitors_agree_on);
}

PropertyResult fleet_batch_scalar(std::uint64_t trial_seed) {
  // Three identically-built fleets over random specs; one stepped scalar,
  // two fed the same batches at 1 and 4 threads. Verdicts and end states
  // must be bit-identical (the PR2 output contract, on the fleet path).
  std::mt19937 rng = make_rng(trial_seed);
  const Nba spec_a = arbitrary_nba(kTinyNba)(rng);
  const Nba spec_b = arbitrary_nba(kTinyNba)(rng);
  const monitor::TrafficConfig cfg{.num_sessions = 64,
                                   .num_monitors = 3,
                                   .alphabet_size = spec_a.alphabet().size(),
                                   .common_sym_bias = 0.7,
                                   .garbage_rate = 0.05};
  const std::uint64_t build_seed = splitmix64(trial_seed);
  const auto build = [&](monitor::MonitorFleet& fleet) {
    std::mt19937 build_rng = make_rng(build_seed);
    const monitor::MonitorId programs[3] = {
        fleet.compile_nba(spec_a), fleet.compile_nba(spec_b),
        fleet.compile_nba(Nba::empty_language(spec_a.alphabet()))};
    for (const monitor::MonitorId m :
         monitor::zipf_monitor_assignment(cfg, build_rng)) {
      fleet.open_session(programs[m]);
    }
  };
  monitor::MonitorFleet scalar, batch1, batch4;
  build(scalar);
  build(batch1);
  build(batch4);
  static core::ThreadPool pool1(1);
  static core::ThreadPool pool4(4);
  for (int round = 0; round < 3; ++round) {
    const std::vector<monitor::Event> batch = monitor::make_batch(cfg, 256, rng);
    std::vector<std::uint8_t> expected(batch.size());
    std::vector<std::uint8_t> got1(batch.size());
    std::vector<std::uint8_t> got4(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expected[i] = scalar.step(batch[i].session, batch[i].sym) ? 1 : 0;
    }
    batch1.ingest(batch, got1, pool1);
    batch4.ingest(batch, got4, pool4);
    bool states_equal = true;
    for (monitor::SessionId id = 0; id < cfg.num_sessions; ++id) {
      states_equal = states_equal &&
                     scalar.session_state(id) == batch1.session_state(id) &&
                     scalar.session_state(id) == batch4.session_state(id);
    }
    if (expected != got1 || expected != got4 || !states_equal) {
      PropertyResult r;
      r.ok = false;
      r.digest = buchi::fingerprint(spec_a);
      r.message =
          "fleet batching: batched ingest diverged from scalar stepping (round " +
          std::to_string(round) + ")\nspec A:\n" + spec_a.to_string() +
          "spec B:\n" + spec_b.to_string();
      return r;
    }
  }
  return ok();
}

// --- Quantitative tier (PR10): closure laws, decomposition, embeddings ----

/// The weighted domains mirror kSmallNba/kTinyNba: closure_automaton interns
/// configs of the subset construction, so the tiny domain keeps its state
/// space (≤ 2^3 configs × payloads) inside the fuzz-smoke budget.
const WeightedNbaDomain kSmallWeighted{kSmallNba};
const WeightedNbaDomain kTinyWeighted{kTinyNba};

PropertyResult weighted_failure(
    const quant::WeightedNba& aut, const std::string& law,
    const std::function<bool(const quant::WeightedNba&)>& holds) {
  const quant::WeightedNba shrunk =
      shrink_weighted_nba(aut, [&](const quant::WeightedNba& c) { return !holds(c); });
  PropertyResult r;
  r.ok = false;
  r.digest = quant::fingerprint(aut);
  r.message = law + "\nshrunk counterexample:\n" + shrunk.to_string();
  return r;
}

PropertyResult quant_closure_laws(std::uint64_t trial_seed) {
  // The HMS closure laws, each with exact double equality under the dyadic
  // weight grid: extensivity Φ* ≥ Φ, safety of the closure (evaluating
  // closure_automaton reproduces Φ*) and idempotence Φ** = Φ*; then
  // monotonicity on a pointwise-dominated pair lo ≤ hi drawn with identical
  // transition structure.
  std::mt19937 rng = make_rng(trial_seed);
  const quant::WeightedNba aut = arbitrary_weighted_nba(kTinyWeighted)(rng);
  const std::vector<UpWord> corpus = corpus_for(aut.nba().alphabet().size());
  const auto laws_hold = [&corpus](const quant::WeightedNba& a) {
    return !quant::verify_closure_laws(a, corpus).has_value();
  };
  if (!laws_hold(aut)) {
    const auto detail = quant::verify_closure_laws(aut, corpus);
    return weighted_failure(
        aut, "quantitative closure laws violated: " + detail.value_or(""), laws_hold);
  }
  const auto [lo, hi] = arbitrary_weighted_nba_pair(kTinyWeighted)(rng);
  for (const UpWord& w : corpus) {
    const double cl_lo = quant::closure_value(lo, w);
    const double cl_hi = quant::closure_value(hi, w);
    if (cl_lo <= cl_hi) continue;
    // The pair's domination is structural (shared skeleton), so candidates
    // from the generic shrinker would break the hypothesis; report as-is.
    PropertyResult r;
    r.ok = false;
    r.digest = quant::fingerprint(lo);
    r.message = "closure monotonicity violated at " +
                w.to_string(lo.nba().alphabet()) + ": Φ*_lo = " +
                std::to_string(cl_lo) + " > Φ*_hi = " + std::to_string(cl_hi) +
                "\nlo:\n" + lo.to_string() + "hi:\n" + hi.to_string();
    return r;
  }
  return ok();
}

PropertyResult quant_decomposition_min(std::uint64_t trial_seed) {
  // Theorem 10 sampled: Φ = min(Φ*, Φ_live) pointwise with the liveness
  // certificate, then the same identity replayed as a meet inside
  // lattice::chain over the sampled value set (the src/lattice bridge).
  std::mt19937 rng = make_rng(trial_seed);
  const quant::WeightedNba aut = arbitrary_weighted_nba(kSmallWeighted)(rng);
  const std::vector<UpWord> corpus = corpus_for(aut.nba().alphabet().size());
  const auto holds = [&corpus](const quant::WeightedNba& a) {
    return !quant::verify_decomposition(a, corpus).has_value() &&
           !quant::verify_chain_embedding(a, corpus).has_value();
  };
  if (holds(aut)) return ok();
  const std::string detail =
      quant::verify_decomposition(aut, corpus)
          .value_or(quant::verify_chain_embedding(aut, corpus).value_or(""));
  return weighted_failure(
      aut, "quantitative decomposition Φ = min(Φ*, Φ_live) violated: " + detail,
      holds);
}

PropertyResult quant_embed_boolean_agreement(std::uint64_t trial_seed) {
  // The differential oracle: the {0,1} embeddings must reproduce the
  // qualitative pipeline with exact 0.0/1.0 doubles — acceptance via
  // embed_buchi/LimSup, the lcl verdict via both closure_value and the
  // embed_safety/Sup reading, and the decomposition live part flagging ⊤
  // exactly on L(B) ∪ ¬lcl(L(B)) — identically at 1 and 4 worker threads.
  // Caches are disabled inside the trial so both thread counts do real work.
  std::mt19937 rng = make_rng(trial_seed);
  const Nba nba = arbitrary_nba(kSmallNba)(rng);
  const bool cache_was_enabled = core::cache_enabled();
  core::set_cache_enabled(false);
  const int threads_before = core::ThreadPool::global().num_threads();
  const auto holds = [](const Nba& b) {
    const std::vector<UpWord> corpus = corpus_for(b.alphabet().size());
    const Nba lcl = buchi::safety_closure(b);
    const buchi::DetSafety det = buchi::DetSafety::determinize(lcl);
    const buchi::BuchiDecomposition parts = buchi::decompose(b);
    const quant::WeightedNba eb = quant::embed_buchi(b);
    const quant::WeightedNba es = quant::embed_safety(b);
    for (const int threads : {1, 4}) {
      core::set_num_threads(threads);
      for (const UpWord& w : corpus) {
        const double in_l = b.accepts(w) ? 1.0 : 0.0;
        const double in_lcl = det.accepts(w) ? 1.0 : 0.0;
        if (quant::value(eb, w) != in_l) return false;
        if (quant::closure_value(eb, w) != in_lcl) return false;
        if (quant::value(es, w) != in_lcl) return false;
        const quant::QuantDecomposition d = quant::decompose_at(eb, w);
        const bool live_top = d.live == eb.top_value();
        if (live_top != parts.liveness.accepts(w)) return false;
      }
    }
    return true;
  };
  PropertyResult result = ok();
  if (!holds(nba)) {
    const Nba shrunk = shrink_nba(nba, [&](const Nba& c) { return !holds(c); });
    result.ok = false;
    result.digest = buchi::fingerprint(nba);
    result.message =
        "boolean embedding diverged from the qualitative pipeline\n"
        "shrunk counterexample:\n" +
        shrunk.to_string();
  }
  core::set_num_threads(threads_before);
  core::set_cache_enabled(cache_was_enabled);
  return result;
}

PropertyResult quant_fold_product_agreement(std::uint64_t trial_seed) {
  // Metamorphic cross-check of the two evaluation surfaces: a random lasso
  // valuation folded directly (fold_value) must equal the full product
  // evaluation of the unary "chain" automaton that plays back exactly that
  // weight sequence on a^ω — for every value function, exactly (DiscSum
  // shares discounted_lasso_value between both paths, so even it is
  // bit-identical).
  std::mt19937 rng = make_rng(trial_seed);
  const quant::WeightLasso lasso = arbitrary_weight_lasso({})(rng);
  const auto holds = [](const quant::WeightLasso& l) {
    for (const quant::ValueFn fn : quant::kAllValueFns) {
      for (const double discount : {0.5, 0.75}) {
        const int prefix = static_cast<int>(l.prefix.size());
        const int period = static_cast<int>(l.period.size());
        const int n = prefix + period;
        quant::WeightedNba chain(words::Alphabet::of_size(1), n, 0, fn, discount);
        chain.nba().set_accepting(0, true);
        for (int i = 0; i < n; ++i) {
          const double wt = i < prefix ? l.prefix[static_cast<std::size_t>(i)]
                                       : l.period[static_cast<std::size_t>(i - prefix)];
          chain.add_transition(i, 0, i + 1 == n ? prefix : i + 1, wt);
        }
        const UpWord word({}, {0});
        if (quant::value(chain, word) != quant::fold_value(fn, discount, l)) {
          return false;
        }
        if (fn != quant::ValueFn::kDiscSum) break;  // discount is inert
      }
    }
    return true;
  };
  if (holds(lasso)) return ok();
  const quant::WeightLasso shrunk =
      shrink_weight_lasso(lasso, [&](const quant::WeightLasso& c) { return !holds(c); });
  PropertyResult r;
  r.ok = false;
  core::DigestBuilder db;
  db.add_string("qc.weight_lasso").add(lasso.prefix.size());
  for (const double x : lasso.prefix) db.add(std::bit_cast<std::uint64_t>(x));
  db.add(lasso.period.size());
  for (const double x : lasso.period) db.add(std::bit_cast<std::uint64_t>(x));
  r.digest = db.digest();
  auto render = [](const std::vector<double>& xs) {
    std::string out = "[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(xs[i]);
    }
    return out + "]";
  };
  r.message = "fold_value diverged from the chain-automaton product evaluation\n"
              "shrunk lasso: prefix " +
              render(shrunk.prefix) + " period " + render(shrunk.period);
  return r;
}

}  // namespace

const std::vector<Property>& properties() {
  static const std::vector<Property> registry = {
      {"words.upword.laws", "§2.1 (UP-words as the computable Σ^ω)", 3, upword_laws},
      {"buchi.lcl.extensive", "§2.4 / closure def. §3", 3, lcl_extensive},
      {"buchi.lcl.idempotent", "§2.4 / closure def. §3", 3, lcl_idempotent},
      {"buchi.lcl.monotone", "§2.4 / closure def. §3", 2, lcl_monotone},
      {"buchi.decomposition.identity", "Theorem 1 / Theorem 2", 3,
       decomposition_identity},
      {"buchi.decomposition.parts", "Theorems 2, 6 (machine closure)", 1,
       decomposition_parts},
      {"buchi.csr.roundtrip", "PR6 CSR transition layout", 2, csr_roundtrip},
      {"buchi.inclusion.differential", "PR4 antichain engine vs rank oracle", 1,
       inclusion_differential},
      {"buchi.simulation.quotient", "PR4 simulation quotient", 2,
       simulation_quotient_preserves},
      {"cache.bit_identity", "PR3 memo-cache contract", 2, cache_bit_identity},
      {"monitor.agreement", "§1 (Schneider: monitors enforce the safety closure)", 2,
       monitor_agreement},
      {"monitor.fleet_batch_scalar", "PR8 fleet batching contract", 2,
       fleet_batch_scalar},
      {"ltl.translate.evaluator", "§2.2 (GPVW tableau)", 3,
       translate_agrees_with_evaluator},
      {"ltl.negation.complement", "§2.2 (semantics)", 2, negation_complements},
      {"ltl.syntactic.sound", "§1 (Sistla's fragments)", 2, syntactic_fragment_sound},
      {"symbolic.explicit_agreement", "PR9 cube backend vs explicit oracle", 2,
       symbolic_explicit_agreement},
      {"lattice.closure.roundtrip", "§3 (closure definition)", 3, closure_roundtrip},
      {"lattice.theorem3", "Theorem 3", 3, theorem3_decomposes},
      {"lattice.theorems5to7", "Theorems 5–7", 2, theorems5to7_hold},
      {"lattice.lemmas3to5", "Lemmas 3–5", 3, lemmas_hold},
      {"rabin.rfcl.laws", "§4.4 (rfcl)", 1, rfcl_closure_laws},
      {"rabin.theorem9", "Theorem 9", 1, theorem9_identity},
      {"ctl.translate.modelcheck", "§4.3 (CTL pipeline)", 1, ctl_translation_agrees},
      {"quant.closure.laws",
       "HMS arXiv 2301.11175 §3 (quantitative closure: extensive, idempotent, "
       "monotone)",
       3, quant_closure_laws},
      {"quant.decomposition.min", "HMS arXiv 2301.11175 Thm. 10 (Φ = min(Φ*, Φ_live))",
       3, quant_decomposition_min},
      {"quant.embed.boolean_agreement",
       "HMS arXiv 2301.11175 §2 (boolean embedding ≅ qualitative pipeline)", 2,
       quant_embed_boolean_agreement},
      {"quant.fold.product_agreement",
       "Boker arXiv 2102.02699 §2 (value functions on lasso words)", 2,
       quant_fold_product_agreement},
  };
  return registry;
}

const Property* find_property(std::string_view name) {
  for (const Property& p : properties()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace slat::qc
