// The fuzzing driver as a library: `run_fuzz` does everything the
// `fuzz_slat` binary does (corpus replay, weighted property sweep, mutant
// bank) against an options struct and an output stream, so driver_test.cpp
// can exercise the whole loop — including corpus round-trips — in-process.
//
// Corpus model: a failing trial is fully described by its (property,
// trial_seed) pair — trials are pure functions of the seed — so a corpus
// entry is a tiny text file carrying exactly that pair plus the failing
// input's structural digest (the filename key) and the human-readable
// shrunk report. Entries are replayed before any new sweeping; an entry
// that fails again is a standing bug, one that passes is a fixed
// regression (reported, kept).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/memo_cache.hpp"

namespace slat::qc {

struct FuzzOptions {
  /// Total number of property trials across the sweep (after corpus replay).
  int runs = 2000;
  /// Wall-clock budget in seconds; 0 disables the limit. The sweep stops at
  /// whichever of `runs` / `time_budget_seconds` is hit first.
  double time_budget_seconds = 0.0;
  /// Base seed; 0 means "use qc::seed()" (i.e. honor SLAT_SEED).
  std::uint64_t base_seed = 0;
  /// Restrict the sweep to one property (empty = weighted sweep over all).
  /// A value ending in '.' is a PREFIX filter: "quant." sweeps every
  /// property of that tier — the shape the per-tier smoke ctest targets use.
  std::string only_property;
  /// Corpus directory; empty = SLAT_CORPUS_DIR env, then the compiled-in
  /// default (tests/corpus in the source tree). "-" disables persistence.
  std::string corpus_dir;
  bool run_properties = true;
  bool run_mutants = true;
  /// Verbose per-property trial counts in the summary.
  bool verbose = false;
};

struct FuzzFailure {
  std::string property;
  std::uint64_t trial_seed = 0;
  core::Digest digest;
  std::string message;
  /// True when this failure came from replaying a corpus entry.
  bool from_corpus = false;
};

struct FuzzReport {
  int trials = 0;
  int corpus_replayed = 0;
  int corpus_now_passing = 0;
  std::vector<FuzzFailure> failures;
  int mutants_total = 0;
  int mutants_killed = 0;
  std::vector<std::string> surviving_mutants;

  bool clean() const {
    return failures.empty() && mutants_killed == mutants_total;
  }
};

/// Resolves the corpus directory from options/env/compiled default.
/// Returns "-" when persistence is disabled.
std::string resolve_corpus_dir(const FuzzOptions& options);

/// Runs corpus replay, the weighted sweep, and the mutant bank; writes
/// human-readable progress to `out`; persists new failures to the corpus.
FuzzReport run_fuzz(const FuzzOptions& options, std::ostream& out);

/// Renders a Digest as the 32-hex-char corpus key.
std::string digest_hex(const core::Digest& digest);

}  // namespace slat::qc
