#include "qc/driver.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "qc/mutants.hpp"
#include "qc/properties.hpp"
#include "qc/seed.hpp"

#ifndef SLAT_CORPUS_DEFAULT
#define SLAT_CORPUS_DEFAULT ""
#endif

namespace slat::qc {
namespace {

namespace fs = std::filesystem;

/// The --property filter: exact match, or — when the filter ends in '.' — a
/// prefix match selecting a whole tier ("quant." → every quant.* property).
bool property_selected(const std::string& name, const std::string& filter) {
  if (filter.empty()) return true;
  if (filter.back() == '.') return name.rfind(filter, 0) == 0;
  return name == filter;
}

struct CorpusEntry {
  std::string property;
  std::uint64_t trial_seed = 0;
  fs::path file;
};

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(dir, ec)) {
    if (item.path().extension() != ".corpus") continue;
    std::ifstream in(item.path());
    CorpusEntry entry;
    entry.file = item.path();
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("property=", 0) == 0) {
        entry.property = line.substr(9);
      } else if (line.rfind("trial_seed=", 0) == 0) {
        entry.trial_seed = std::strtoull(line.c_str() + 11, nullptr, 10);
      }
    }
    if (!entry.property.empty()) entries.push_back(std::move(entry));
  }
  // directory_iterator order is unspecified; sort for reproducible replay.
  std::sort(entries.begin(), entries.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) { return a.file < b.file; });
  return entries;
}

void save_corpus_entry(const std::string& dir, const FuzzFailure& failure) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path file = fs::path(dir) / (digest_hex(failure.digest) + ".corpus");
  std::ofstream out(file);
  out << "property=" << failure.property << "\n";
  out << "trial_seed=" << failure.trial_seed << "\n";
  out << "digest=" << digest_hex(failure.digest) << "\n";
  // The shrunk report rides along for humans; replay ignores it.
  std::istringstream message(failure.message);
  std::string line;
  while (std::getline(message, line)) out << "# " << line << "\n";
}

}  // namespace

std::string digest_hex(const core::Digest& digest) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(digest.hi),
                static_cast<unsigned long long>(digest.lo));
  return buf;
}

std::string resolve_corpus_dir(const FuzzOptions& options) {
  if (!options.corpus_dir.empty()) return options.corpus_dir;
  if (const char* env = std::getenv("SLAT_CORPUS_DIR"); env && *env) return env;
  const std::string compiled = SLAT_CORPUS_DEFAULT;
  return compiled.empty() ? "-" : compiled;
}

FuzzReport run_fuzz(const FuzzOptions& options, std::ostream& out) {
  FuzzReport report;
  const std::uint64_t base_seed = options.base_seed != 0 ? options.base_seed : seed();
  const std::string corpus_dir = resolve_corpus_dir(options);
  const bool persist = corpus_dir != "-";
  out << "fuzz_slat: base seed " << base_seed << " (SLAT_SEED=" << base_seed
      << " replays), corpus " << (persist ? corpus_dir : "(disabled)") << "\n";

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.time_budget_seconds));
  const auto out_of_time = [&] {
    return options.time_budget_seconds > 0.0 &&
           std::chrono::steady_clock::now() >= deadline;
  };

  const auto run_trial = [&](const Property& property, std::uint64_t trial_seed,
                             bool from_corpus) {
    ++report.trials;
    const PropertyResult result = property.trial(trial_seed);
    if (result.ok) return true;
    FuzzFailure failure;
    failure.property = property.name;
    failure.trial_seed = trial_seed;
    failure.digest = result.digest;
    failure.message = result.message;
    failure.from_corpus = from_corpus;
    out << "FAIL " << property.name << " (trial_seed=" << failure.trial_seed
        << ", digest=" << digest_hex(failure.digest) << ")\n"
        << failure.message << "\n"
        << "replay: SLAT_SEED=" << base_seed << " fuzz_slat --property="
        << property.name << "\n";
    if (persist && !from_corpus) save_corpus_entry(corpus_dir, failure);
    report.failures.push_back(std::move(failure));
    return false;
  };

  // Phase 1: corpus replay — known-bad seeds first, always, regardless of
  // the sweep budget.
  if (options.run_properties && persist) {
    for (const CorpusEntry& entry : load_corpus(corpus_dir)) {
      const Property* property = find_property(entry.property);
      if (property == nullptr) {
        out << "corpus: skipping " << entry.file.filename().string()
            << " (unknown property " << entry.property << ")\n";
        continue;
      }
      if (!property_selected(property->name, options.only_property)) continue;
      ++report.corpus_replayed;
      if (run_trial(*property, entry.trial_seed, /*from_corpus=*/true)) {
        ++report.corpus_now_passing;
      }
    }
    if (report.corpus_replayed > 0) {
      out << "corpus: replayed " << report.corpus_replayed << " entries, "
          << report.corpus_now_passing << " now passing\n";
    }
  }

  // Phase 2: the weighted sweep. Trial seeds are derived from the base seed
  // and the per-property trial index, so any failure replays exactly from
  // (base seed, property, index) — independent of sweep interleaving.
  if (options.run_properties) {
    std::vector<const Property*> pool;
    for (const Property& p : properties()) {
      if (!property_selected(p.name, options.only_property)) continue;
      for (int i = 0; i < p.weight; ++i) pool.push_back(&p);
    }
    if (pool.empty() && !options.only_property.empty()) {
      out << "error: unknown property " << options.only_property << "\n";
    }
    std::mt19937 scheduler = make_rng(derive(base_seed, "fuzz.scheduler"));
    std::map<std::string, int> trial_index;
    for (int i = 0; i < options.runs && !pool.empty(); ++i) {
      if (out_of_time()) {
        out << "time budget reached after " << i << " sweep trials\n";
        break;
      }
      const Property& property =
          *pool[std::uniform_int_distribution<std::size_t>(0, pool.size() - 1)(
              scheduler)];
      const int index = trial_index[property.name]++;
      const std::uint64_t trial_seed =
          derive(base_seed, property.name + ":" + std::to_string(index));
      run_trial(property, trial_seed, /*from_corpus=*/false);
    }
    if (options.verbose) {
      for (const auto& [name, count] : trial_index) {
        out << "  " << name << ": " << count << " trials\n";
      }
    }
  }

  // Phase 3: the mutant bank — deterministic, so it runs after the sweep
  // without consuming its budget.
  if (options.run_mutants) {
    for (const Mutant& mutant : mutants()) {
      ++report.mutants_total;
      if (mutant.killed()) {
        ++report.mutants_killed;
      } else {
        out << "SURVIVED " << mutant.name << " (corrupts: " << mutant.corrupts
            << ")\n";
        report.surviving_mutants.push_back(mutant.name);
      }
    }
    out << "mutants: " << report.mutants_killed << "/" << report.mutants_total
        << " killed\n";
  }

  out << "fuzz_slat: " << report.trials << " trials, " << report.failures.size()
      << " failures" << (report.clean() ? " — clean\n" : "\n");
  return report;
}

}  // namespace slat::qc
