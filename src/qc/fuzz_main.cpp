// fuzz_slat — the coverage-guided differential fuzzer for the whole repo.
//
//   fuzz_slat [--runs=N] [--time-budget=60s] [--seed=N] [--property=NAME|PREFIX.]
//             [--corpus-dir=DIR|-] [--no-mutants] [--mutants-only]
//             [--list] [--verbose]
//
// --property matches one property by exact name; a value ending in '.' is a
// prefix filter sweeping a whole tier (e.g. --property=quant.).
//
// Exit status: 0 when every trial passed and every mutant was killed.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>

#include "qc/driver.hpp"
#include "qc/mutants.hpp"
#include "qc/properties.hpp"

namespace {

bool parse_flag(std::string_view arg, std::string_view name, std::string* value) {
  if (arg.rfind(name, 0) != 0) return false;
  arg.remove_prefix(name.size());
  if (!arg.empty() && arg.front() == '=') arg.remove_prefix(1);
  *value = std::string(arg);
  return true;
}

/// "60", "60s", "2m" → seconds.
double parse_duration(const std::string& text) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != nullptr && *end == 'm') value *= 60.0;
  return value;
}

int list_everything() {
  std::cout << "properties (name, weight, paper ref):\n";
  for (const auto& p : slat::qc::properties()) {
    std::cout << "  " << p.name << "  w=" << p.weight << "  [" << p.paper_ref
              << "]\n";
  }
  std::cout << "mutants (name, corrupted artifact):\n";
  for (const auto& m : slat::qc::mutants()) {
    std::cout << "  " << m.name << "  [" << m.corrupts << "]\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  slat::qc::FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string value;
    if (arg == "--list") return list_everything();
    if (arg == "--no-mutants") {
      options.run_mutants = false;
    } else if (arg == "--mutants-only") {
      options.run_properties = false;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (parse_flag(arg, "--runs", &value)) {
      options.runs = std::atoi(value.c_str());
    } else if (parse_flag(arg, "--time-budget", &value)) {
      options.time_budget_seconds = parse_duration(value);
    } else if (parse_flag(arg, "--seed", &value)) {
      options.base_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(arg, "--property", &value)) {
      options.only_property = value;
    } else if (parse_flag(arg, "--corpus-dir", &value)) {
      options.corpus_dir = value;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: fuzz_slat [--runs=N] [--time-budget=60s] [--seed=N]\n"
                << "                 [--property=NAME|PREFIX.] [--corpus-dir=DIR|-]\n"
                << "                 [--no-mutants] [--mutants-only] [--list]\n"
                << "       a --property value ending in '.' sweeps the whole\n"
                << "       tier with that prefix (e.g. --property=quant.)\n";
      return 2;
    }
  }
  const slat::qc::FuzzReport report = slat::qc::run_fuzz(options, std::cout);
  return report.clean() ? 0 : 1;
}
