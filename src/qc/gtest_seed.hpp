// Drop-in gtest hookup for seed reproducibility: any test binary that
// includes this header gets a listener that, whenever a test FAILS after
// drawing randomness through qc::make_rng, prints the one-line
//
//   [ SLAT_SEED ] SLAT_SEED=<n> ctest -R <TestName>   # replays this failure
//
// so the failure reproduces exactly from the log. Include it from every
// randomized test file; registration is idempotent per binary (inline
// variable, one instance per program).
#pragma once

#include <gtest/gtest.h>

#include <cstdio>

#include "qc/seed.hpp"

namespace slat::qc {

class SeedReproListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestStart(const ::testing::TestInfo&) override { reset_rng_used(); }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (!info.result()->Failed() || !rng_was_used()) return;
    std::printf("[ SLAT_SEED ] %s ctest -R %s.%s   # replays this failure\n",
                repro_line().c_str(), info.test_suite_name(), info.name());
    std::fflush(stdout);
  }
};

namespace detail {
inline const bool seed_listener_registered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SeedReproListener);
  return true;
}();
}  // namespace detail

}  // namespace slat::qc
