// The metamorphic oracle library: every cross-layer law the paper proves
// and this repo implements, registered as a named, individually-runnable
// property. A property's trial is a pure function of a 64-bit seed — it
// generates its own inputs (qc/gen.hpp), checks the law, and on failure
// greedily shrinks the offending input (qc/shrink.hpp) before reporting.
// Seed-determinism makes a failing (property, trial_seed) pair a complete,
// replayable bug report; the fuzz driver's corpus stores exactly those
// pairs, keyed by the structural digest of the failing input.
//
// THEORY.md carries the table mapping each property to the paper theorem
// or figure it executes; `paper_ref` here is the short form.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/memo_cache.hpp"

namespace slat::qc {

/// Outcome of one property trial.
struct PropertyResult {
  bool ok = true;
  /// On failure: what law broke, with the SHRUNK artifact rendered inline.
  std::string message;
  /// On failure: structural digest of the original failing input — the
  /// corpus key (stable across shrink improvements).
  core::Digest digest;
};

struct Property {
  std::string name;       ///< e.g. "buchi.lcl.idempotent"
  std::string paper_ref;  ///< e.g. "Lemma 1 / §2.4"
  int weight = 1;         ///< sweep weight (higher = sampled more often)
  /// One seed-deterministic trial.
  PropertyResult (*trial)(std::uint64_t trial_seed);
};

/// All registered properties, in a stable order.
const std::vector<Property>& properties();

/// Lookup by name; nullptr when absent.
const Property* find_property(std::string_view name);

}  // namespace slat::qc
