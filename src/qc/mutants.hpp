// The curated mutant bank: deliberately-broken constructions, each
// corrupting one artifact of the paper's pipelines, paired with the oracle
// that must detect ("kill") it. The bank gates the oracle library: a mutant
// that survives means a law is too weak to notice a real implementation
// bug of that shape. mutants_test.cpp and the fuzz driver both assert a
// 100% kill rate.
//
// Every mutant is fully deterministic — fixed inputs, no RNG — so a
// surviving mutant is a stable, debuggable fact, not a flake.
#pragma once

#include <string>
#include <vector>

namespace slat::qc {

struct Mutant {
  std::string name;      ///< e.g. "buchi.lcl.skip_accepting"
  std::string pipeline;  ///< "buchi" | "ltl" | "lattice" | "rabin" | "ctl" | ...
  /// The paper artifact the mutant corrupts (comment-grade description).
  std::string corrupts;
  /// True iff the oracle set detects the planted defect.
  bool (*killed)();
};

/// The whole bank, in a stable order. Size ≥ 38 (asserted by tests).
const std::vector<Mutant>& mutants();

}  // namespace slat::qc
