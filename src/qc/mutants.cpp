#include "qc/mutants.hpp"

#include <algorithm>
#include <optional>

#include "buchi/inclusion.hpp"
#include "buchi/language.hpp"
#include "buchi/nba.hpp"
#include "buchi/safety.hpp"
#include "core/memo_cache.hpp"
#include "lattice/closure.hpp"
#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "lattice/finite_lattice.hpp"
#include "ltl/eval.hpp"
#include "monitor/fleet.hpp"
#include "monitor/monitor.hpp"
#include "ltl/formula.hpp"
#include "ltl/translate.hpp"
#include "quant/closure.hpp"
#include "quant/decomposition.hpp"
#include "quant/eval.hpp"
#include "quant/value_function.hpp"
#include "quant/weighted.hpp"
#include "rabin/from_ctl.hpp"
#include "rabin/rabin_tree_automaton.hpp"
#include "trees/ctl.hpp"
#include "trees/ktree.hpp"
#include "words/cube.hpp"
#include "words/up_word.hpp"

namespace slat::qc {
namespace {

using buchi::Nba;
using monitor::MonitorFleet;
using words::Alphabet;
using words::UpWord;
using words::Word;

// Fixed, named test words over Σ = {a, b}.
UpWord w_a_omega() { return UpWord({}, {0}); }
UpWord w_b_omega() { return UpWord({}, {1}); }
UpWord w_ab_omega() { return UpWord({0}, {1}); }   // a b^ω
UpWord w_ba_omega() { return UpWord({1}, {0}); }   // b a^ω
UpWord w_ba_cycle() { return UpWord({}, {1, 0}); }  // (ba)^ω

/// The classic 2-state NBA for "infinitely many `sym`" over Σ = {a, b}.
Nba gf_letter(words::Sym sym) {
  Nba nba(Alphabet::binary(), 2, 0);
  nba.set_accepting(1, true);
  for (words::Sym s = 0; s < 2; ++s) {
    nba.add_transition(0, s, s == sym ? 1 : 0);
    nba.add_transition(1, s, s == sym ? 1 : 0);
  }
  return nba;
}

/// 1-state NBA: universal when accepting, empty when not.
Nba trivial_nba(bool accepting) {
  Nba nba(Alphabet::binary(), 1, 0);
  nba.set_accepting(0, accepting);
  nba.add_transition(0, 0, 0);
  nba.add_transition(0, 1, 0);
  return nba;
}

// ---------------------------------------------------------------------------
// Büchi pipeline
// ---------------------------------------------------------------------------

// lcl must accept every word all of whose prefixes extend into L (§2.4);
// returning the trimmed input instead misses exactly the added limits.
bool kill_lcl_skip_make_accepting() {
  const Nba b = gf_letter(0);  // L = GF a; lcl(L) = Σ^ω
  const Nba mutant = b;        // "closure" that only trims (identity here)
  const Nba correct = buchi::safety_closure(b);
  return mutant.accepts(w_b_omega()) != correct.accepts(w_b_omega());
}

// lcl must PRUNE states from which no word of L is reachable; skipping the
// prune admits words with dead-end prefixes.
bool kill_lcl_skip_prune() {
  // L = a^ω: q0 --a--> q0 accepting; q0 --b--> q1 (dead), q1 --b--> q1.
  Nba b(Alphabet::binary(), 2, 0);
  b.set_accepting(0, true);
  b.add_transition(0, 0, 0);
  b.add_transition(0, 1, 1);
  b.add_transition(1, 1, 1);
  Nba mutant = b;  // make everything accepting, but keep the dead end
  mutant.set_accepting(1, true);
  const Nba correct = buchi::safety_closure(b);  // = {a^ω}
  return mutant.accepts(w_b_omega()) != correct.accepts(w_b_omega());
}

// Theorem 2: lcl lands in the safety sublattice. The identity "closure" is
// extensive, idempotent and monotone, yet its output need not be safety.
bool kill_lcl_identity_operator() {
  const Nba mutant_closure_output = gf_letter(0);  // cl'(B) = B, B = GF a
  return !buchi::is_safety(mutant_closure_output);
}

// Theorem 2's liveness part: B_L must be a liveness property. Returning B
// itself fails whenever L(B) is not already live.
bool kill_decompose_liveness_not_live() {
  Nba b(Alphabet::binary(), 1, 0);  // L = a^ω: not liveness
  b.set_accepting(0, true);
  b.add_transition(0, 0, 0);
  const Nba mutant_liveness_part = b;
  return !buchi::is_liveness(mutant_liveness_part);
}

// Theorem 2's identity L = S ∩ L_live: pairing lcl(B) with Σ^ω loses the
// intersection back to lcl(B).
bool kill_decompose_wrong_meet() {
  const Nba b = gf_letter(0);
  const Nba mutant_safety = buchi::safety_closure(b);
  const Nba mutant_liveness = trivial_nba(true);  // Σ^ω
  return !buchi::is_equivalent(buchi::intersect(mutant_safety, mutant_liveness), b);
}

// The Büchi product needs the 2-phase counter; accepting on the left
// component alone admits words the right conjunct rejects.
bool kill_intersect_no_counter() {
  const Nba lhs = gf_letter(0), rhs = gf_letter(1);
  // Naive product: accept whenever the lhs component is accepting.
  Nba naive(Alphabet::binary(), 4, 0);
  for (buchi::State i = 0; i < 2; ++i) {
    for (buchi::State j = 0; j < 2; ++j) {
      naive.set_accepting(i * 2 + j, lhs.is_accepting(i));
      for (words::Sym s = 0; s < 2; ++s) {
        for (buchi::State i2 : lhs.successors(i, s)) {
          for (buchi::State j2 : rhs.successors(j, s)) {
            naive.add_transition(i * 2 + j, s, i2 * 2 + j2);
          }
        }
      }
    }
  }
  const Nba correct = buchi::intersect(lhs, rhs);
  return naive.accepts(w_a_omega()) != correct.accepts(w_a_omega());
}

// Complementation must act on L itself, not on its safety closure: for
// L = GF a the closure is Σ^ω, whose complement ∅ misses b^ω ∈ ¬L.
bool kill_complement_via_closure() {
  const Nba b = gf_letter(0);
  const Nba mutant_complement = trivial_nba(false);  // ¬(lcl L) = ¬Σ^ω = ∅
  // Complement law: exactly one of B, ¬B accepts each word.
  return mutant_complement.accepts(w_b_omega()) == b.accepts(w_b_omega());
}

// Inclusion decided on a finite word corpus only (no antichain search) says
// "included" whenever the corpus misses L(lhs) entirely.
bool kill_inclusion_sampled_only() {
  // L(lhs) = {aaab^ω}: outside every word of the (2, 2)-bounded corpus.
  Nba lhs(Alphabet::binary(), 4, 0);
  lhs.set_accepting(3, true);
  lhs.add_transition(0, 0, 1);
  lhs.add_transition(1, 0, 2);
  lhs.add_transition(2, 0, 3);
  lhs.add_transition(3, 1, 3);
  const Nba rhs = trivial_nba(false);  // ∅
  bool mutant_included = true;
  for (const UpWord& w : words::enumerate_up_words(2, 2, 2)) {
    if (lhs.accepts(w) && !rhs.accepts(w)) mutant_included = false;
  }
  const buchi::InclusionResult correct = buchi::check_inclusion(lhs, rhs);
  return mutant_included != correct.included;
}

// Emptiness needs an accepting LASSO, not an accepting REACHABLE state.
bool kill_emptiness_reachability_only() {
  Nba b(Alphabet::binary(), 2, 0);
  b.set_accepting(1, true);
  b.add_transition(0, 0, 1);  // accepting state reachable, but a dead end
  const bool mutant_nonempty = true;  // "reachable accepting state ⇒ nonempty"
  return mutant_nonempty && buchi::check_emptiness(b).included;
}

// Quotienting by a "simulation" that ignores acceptance merges accepting
// with non-accepting states and changes the language.
bool kill_simulation_ignore_acceptance() {
  // L = (ab)^ω: q0 accepting --a--> q1 --b--> q0.
  Nba b(Alphabet::binary(), 2, 0);
  b.set_accepting(0, true);
  b.add_transition(0, 0, 1);
  b.add_transition(1, 1, 0);
  // Acceptance-blind merge of {q0, q1}: one accepting state, both loops.
  Nba mutant(Alphabet::binary(), 1, 0);
  mutant.set_accepting(0, true);
  mutant.add_transition(0, 0, 0);
  mutant.add_transition(0, 1, 0);
  return !buchi::is_equivalent(mutant, b);
}

// Sampled safety classification is only refutation-sound: a corpus that
// misses the refuting word certifies nothing. The exact test must disagree.
bool kill_safety_inadequate_corpus() {
  // L = a·(GF a): starts with a, infinitely many a. lcl(L) = aΣ^ω, and
  // a b^ω ∈ lcl(L) \ L refutes safety — but {a^ω, b^ω} never sees it.
  Nba b(Alphabet::binary(), 3, 0);
  b.set_accepting(2, true);
  b.add_transition(0, 0, 1);
  b.add_transition(1, 0, 2);
  b.add_transition(1, 1, 1);
  b.add_transition(2, 0, 2);
  b.add_transition(2, 1, 1);
  const buchi::SafetyClass sampled =
      buchi::classify_sampled(b, {w_a_omega(), w_b_omega()});
  return sampled == buchi::SafetyClass::kSafety && !buchi::is_safety(b);
}

// The CSR offset table has rows+1 entries addressed by row = q·|Σ|+s; a
// reader that indexes offsets[row+1]..offsets[row+2] hands every (state,
// symbol) cell its neighbor's slice, visibly changing the language.
bool kill_csr_offset_row_shift() {
  // L = (ab)^ω: q0 accepting --a--> q1 --b--> q0.
  Nba b(Alphabet::binary(), 2, 0);
  b.set_accepting(0, true);
  b.add_transition(0, 0, 1);
  b.add_transition(1, 1, 0);
  // Hand-rolled CSR of b, then a mutant automaton wired from off-by-one
  // slice reads.
  const int sigma = 2, rows = 2 * sigma;
  std::vector<int> offsets(rows + 1, 0);
  std::vector<buchi::State> targets;
  for (int q = 0; q < 2; ++q) {
    for (words::Sym s = 0; s < sigma; ++s) {
      offsets[q * sigma + s] = static_cast<int>(targets.size());
      for (buchi::State t : b.successors(q, s)) targets.push_back(t);
    }
  }
  offsets[rows] = static_cast<int>(targets.size());
  Nba mutant(Alphabet::binary(), 2, 0);
  mutant.set_accepting(0, true);
  for (int q = 0; q < 2; ++q) {
    for (words::Sym s = 0; s < sigma; ++s) {
      const int row = q * sigma + s;
      if (row + 2 > rows) continue;  // the shifted read runs off the table
      for (int i = offsets[row + 1]; i < offsets[row + 2]; ++i) {
        mutant.add_transition(q, s, targets[i]);
      }
    }
  }
  const UpWord ab_omega({}, {0, 1});
  return mutant.accepts(ab_omega) != b.accepts(ab_omega);
}

// Per-row CSR order is first-insertion order — that ordering IS part of the
// structural content address. A rebuild that sorts slices ascending re-keys
// structurally identical automata, silently splitting the memo cache.
bool kill_csr_unsorted_slice() {
  Nba b(Alphabet::binary(), 3, 0);
  b.set_accepting(2, true);
  b.add_transition(0, 0, 2);  // slice (q0, a) = [2, 1]: insertion order
  b.add_transition(0, 0, 1);
  b.add_transition(1, 0, 2);
  b.add_transition(2, 0, 2);
  // Mutant rebuild: the same edge set with the slice sorted to [1, 2].
  Nba mutant(Alphabet::binary(), 3, 0);
  mutant.set_accepting(2, true);
  mutant.add_transition(0, 0, 1);
  mutant.add_transition(0, 0, 2);
  mutant.add_transition(1, 0, 2);
  mutant.add_transition(2, 0, 2);
  return !(buchi::fingerprint(mutant) == buchi::fingerprint(b)) &&
         buchi::is_equivalent(mutant, b);
}

// ---------------------------------------------------------------------------
// Symbolic cube backend (PR9)
// ---------------------------------------------------------------------------

// A cube is {must_true, must_false}; a mutant that reads the polarity
// masks swapped inverts the literal set of every constrained AP. The
// letter-expansion semantics (what the explicit-agreement property checks
// after expansion) sees the difference on any asymmetric cube.
bool kill_cube_flipped_polarity() {
  words::CubeStore store(3);
  const words::LabelId label = store.cube(0b001, 0b010);  // p ∧ ¬q
  const auto correct = store.expand_letters(label);
  // Mutant match: the polarity bit flipped — must_true letters read as
  // must_false and vice versa.
  std::vector<words::Sym> mutant;
  for (words::Sym v = 0; v < 8; ++v) {
    const bool matches_flipped = (v & 0b001) == 0 && (v & 0b010) == 0b010;
    if (matches_flipped) mutant.push_back(v);
  }
  const std::vector<words::Sym> correct_vec(correct.begin(), correct.end());
  return mutant != correct_vec;
}

// Hash-consing is the store's load-bearing contract: structurally equal
// labels MUST be id-equal, because the algebra memos, refine's duplicate
// skipping and the "same id ⇒ same language" fast path all key on ids. A
// mutant that interns without the dedup lookup hands out fresh ids for
// equal cubes, so id equality stops implying structural equality.
bool kill_cube_dropped_dedup() {
  words::CubeStore store(3);
  const words::LabelId a = store.cube(0b001, 0b100);
  const words::LabelId b = store.cube(0b001, 0b100);
  const std::uint64_t interned_before = store.stats().interned_labels;
  const words::LabelId c = store.cube(0b001, 0b100);
  const bool real_contract =
      a == b && b == c && store.stats().interned_labels == interned_before;
  // Mutant intern: append without consulting the index — every call is a
  // fresh node, so equal structures get distinct ids.
  std::vector<std::vector<words::Cube>> mutant_nodes;
  const auto mutant_intern = [&](std::vector<words::Cube> cubes) {
    mutant_nodes.push_back(std::move(cubes));
    return static_cast<words::LabelId>(mutant_nodes.size()) - 1;
  };
  const words::LabelId ma = mutant_intern({words::Cube{0b001, 0b100}});
  const words::LabelId mb = mutant_intern({words::Cube{0b001, 0b100}});
  const bool mutant_breaks = ma != mb && mutant_nodes[ma] == mutant_nodes[mb];
  return real_contract && mutant_breaks;
}

// ---------------------------------------------------------------------------
// LTL pipeline
// ---------------------------------------------------------------------------

// The tableau's Until expansion carries an eventuality obligation; the weak
// variant (drop it) accepts a^ω for a U b.
bool kill_translate_until_as_weak() {
  ltl::LtlArena arena(Alphabet::binary());
  const ltl::FormulaId a = arena.atom(0), b = arena.atom(1);
  const ltl::FormulaId f = arena.until(a, b);
  // Weak until: b R (a ∨ b) — the same expansion minus the obligation.
  const Nba mutant = ltl::to_nba(arena, arena.release(b, arena.disj(a, b)));
  return mutant.accepts(w_a_omega()) != ltl::holds(arena, f, w_a_omega());
}

// X must advance the word by one position; the identity translation
// evaluates the operand at the wrong index.
bool kill_translate_next_as_identity() {
  ltl::LtlArena arena(Alphabet::binary());
  const ltl::FormulaId f = arena.next(arena.atom(0));  // X a
  const Nba mutant = ltl::to_nba(arena, arena.atom(0));
  return mutant.accepts(w_ba_omega()) != ltl::holds(arena, f, w_ba_omega());
}

// NNF duality: ¬(φ U ψ) = ¬φ R ¬ψ. Pushing the negation through U as
// another U breaks on (ba)^ω.
bool kill_nnf_negated_until_as_until() {
  ltl::LtlArena arena(Alphabet::binary());
  const ltl::FormulaId a = arena.atom(0), b = arena.atom(1);
  const ltl::FormulaId f = arena.negation(arena.until(a, b));
  const Nba mutant =
      ltl::to_nba(arena, arena.until(arena.negation(a), arena.negation(b)));
  return mutant.accepts(w_ba_cycle()) != ltl::holds(arena, f, w_ba_cycle());
}

// Sistla's safety fragment excludes Until; a classifier that admits it
// calls F b (= true U b) safe, contradicting the exact semantic test.
bool kill_syntactic_until_allowed() {
  ltl::LtlArena arena(Alphabet::binary());
  const ltl::FormulaId f = arena.eventually(arena.atom(1));  // F b
  const bool mutant_says_safety = true;  // "no Release ⇒ safety" (wrong side)
  return mutant_says_safety && !buchi::is_safety(ltl::to_nba(arena, f));
}

// §2.3: GF is recurrence, not reachability — evaluating it on the finite
// stem+period word confuses "b occurs once" with "b occurs infinitely".
bool kill_eval_gf_as_reachability() {
  ltl::LtlArena arena(Alphabet::binary());
  const ltl::FormulaId f = arena.always(arena.eventually(arena.atom(1)));
  const UpWord w = w_ba_omega();  // b a^ω: GF b fails
  bool mutant_holds = false;  // "some letter of stem+period is b"
  for (std::size_t i = 0; i < w.prefix().size() + w.period().size(); ++i) {
    if (w.at(i) == 1) mutant_holds = true;
  }
  return mutant_holds != ltl::holds(arena, f, w);
}

// ---------------------------------------------------------------------------
// Lattice pipeline
// ---------------------------------------------------------------------------

// Closure laws (§3): extensive + idempotent does not imply monotone; the
// law checker must reject the map. B_2 indices: 0 < {1, 2} < 3.
bool kill_closure_non_monotone() {
  const lattice::FiniteLattice b2 = lattice::boolean_lattice(2);
  const std::vector<lattice::Elem> map = {2, 1, 2, 3};  // cl.0 = 2 ≰ 1 = cl.1
  return lattice::LatticeClosure::violation(b2, map).has_value();
}

// Idempotence: cl.cl.0 = cl.1 = 3 ≠ 1 = cl.0.
bool kill_closure_not_idempotent() {
  const lattice::FiniteLattice b2 = lattice::boolean_lattice(2);
  const std::vector<lattice::Elem> map = {1, 3, 2, 3};
  return lattice::LatticeClosure::violation(b2, map).has_value();
}

// Lemma 6 / Figure 1: dropping the modularity hypothesis from Theorem 3 is
// fatal — in N5 with the paper's closure, `a` has NO decomposition at all.
bool kill_theorem3_without_modularity() {
  const lattice::FiniteLattice pentagon = lattice::n5();
  const lattice::LatticeClosure cl = lattice::LatticeClosure::from_closed_set(
      pentagon, {lattice::N5Elems::bottom, lattice::N5Elems::b, lattice::N5Elems::c,
                 lattice::N5Elems::top});  // cl.a = b, identity elsewhere
  return !lattice::find_any_decomposition(pentagon, cl, cl, lattice::N5Elems::a)
              .has_value();
}

// A paper-setting check that skips modularity wrongly admits N5.
bool kill_paper_setting_skip_modularity() {
  return lattice::n5().modularity_counterexample().has_value() &&
         !lattice::n5().is_paper_setting();
}

// Swapping the safety/liveness components of a Theorem 2 decomposition must
// fail validation: the safety element is closed but almost never live.
bool kill_decomposition_swapped_parts() {
  const lattice::FiniteLattice b2 = lattice::boolean_lattice(2);
  const lattice::LatticeClosure identity =
      lattice::LatticeClosure::from_closed_set(b2, {0, 1, 2, 3});
  const lattice::Elem a = 1;
  const auto d = lattice::decompose(b2, identity, a);
  if (!d.has_value() || !lattice::is_valid_decomposition(b2, identity, identity, a, *d)) {
    return false;  // the genuine decomposition must validate
  }
  lattice::Decomposition swapped = *d;
  std::swap(swapped.safety, swapped.liveness);
  return !lattice::is_valid_decomposition(b2, identity, identity, a, swapped);
}

// ---------------------------------------------------------------------------
// Rabin / CTL pipeline
// ---------------------------------------------------------------------------

// rfcl (§4.4) must prune states with empty language BEFORE trivializing the
// acceptance; skipping the prune admits trees with doomed branches.
bool kill_rfcl_skip_prune() {
  const Alphabet sigma = Alphabet::binary();
  rabin::RabinTreeAutomaton b(sigma, 2, 2, 0);
  b.add_transition(0, 0, {0, 0});  // q0 --a--> (q0, q0)
  b.add_transition(0, 1, {1, 1});  // q0 --b--> (qr, qr)
  b.add_transition(1, 0, {1, 1});
  b.add_transition(1, 1, {1, 1});
  b.add_pair({0}, {1});  // green q0, red qr: L = the all-a tree
  rabin::RabinTreeAutomaton mutant = b;  // trivialize without pruning
  mutant.set_trivial_acceptance();
  const trees::KTree all_b = trees::KTree::constant(sigma, 1, 2);
  return mutant.accepts(all_b) && !rabin::rfcl(b).accepts(all_b);
}

// rfcl must also TRIVIALIZE the acceptance; pruning alone keeps infinite
// obligations that finite-depth closure is supposed to erase.
bool kill_rfcl_keep_acceptance() {
  const Alphabet sigma = Alphabet::binary();
  rabin::RabinTreeAutomaton b(sigma, 2, 2, 0);
  b.add_transition(0, 0, {0, 0});  // stay before the b
  b.add_transition(0, 1, {1, 1});  // take the single b
  b.add_transition(1, 0, {1, 1});  // then a forever
  b.add_pair({1}, {});  // L = every path takes exactly one b
  const rabin::RabinTreeAutomaton mutant = b;  // prune (no-op) but keep pairs
  const trees::KTree all_a = trees::KTree::constant(sigma, 0, 2);
  return rabin::rfcl(b).accepts(all_a) && !mutant.accepts(all_a);
}

// Rabin emptiness must respect the red sets; reading the pair as a Büchi
// condition (green only) resurrects rejected runs.
bool kill_emptiness_ignore_red() {
  const Alphabet sigma = Alphabet::binary();
  rabin::RabinTreeAutomaton b(sigma, 2, 1, 0);
  b.add_transition(0, 0, {0, 0});
  b.add_pair({0}, {0});  // green AND red: every run rejects
  rabin::RabinTreeAutomaton green_only(sigma, 2, 1, 0);
  green_only.add_transition(0, 0, {0, 0});
  green_only.add_pair({0}, {});
  return b.is_empty() && !green_only.is_empty();
}

// §4.3: E and A translate to different Rabin automata; swapping the
// quantifier of X is visible on a tree with mixed children.
bool kill_ctl_wrong_quantifier() {
  trees::CtlArena arena(Alphabet::binary());
  trees::KTree t(Alphabet::binary(), 3, 0);
  t.set_label(0, 0);
  t.set_label(1, 0);
  t.set_label(2, 1);
  t.add_child(0, 1);
  t.add_child(0, 2);
  t.add_child(1, 1);
  t.add_child(1, 1);
  t.add_child(2, 2);
  t.add_child(2, 2);
  const trees::CtlId f = arena.ex(arena.atom(0));  // EX a: true here
  const rabin::RabinTreeAutomaton mutant =
      rabin::from_ctl(arena, arena.ax(arena.atom(0)), 2);
  return mutant.accepts(t) != trees::holds(arena, f, t);
}

// E[φ U ψ] requires φ along the path to ψ; EF ψ forgets φ. A c-labeled root
// separates them (c ⊨ neither a nor b).
bool kill_ctl_eu_as_ef() {
  const Alphabet sigma = Alphabet::of_size(3);
  trees::CtlArena arena(sigma);
  trees::KTree t(sigma, 2, 0);
  t.set_label(0, 2);  // root c
  t.set_label(1, 1);  // children b
  t.add_child(0, 1);
  t.add_child(0, 1);
  t.add_child(1, 1);
  t.add_child(1, 1);
  const trees::CtlId f = arena.eu(arena.atom(0), arena.atom(1));  // E[a U b]
  const rabin::RabinTreeAutomaton mutant =
      rabin::from_ctl(arena, arena.ef(arena.atom(1)), 2);
  return mutant.accepts(t) != trees::holds(arena, f, t);
}

// ---------------------------------------------------------------------------
// Words / core infrastructure
// ---------------------------------------------------------------------------

// §2.1: UP-word equality is equality of the denoted ω-words; comparing the
// raw (prefix, period) pairs misses a(ba)^ω = ab(ab)^ω... = (ab)^ω.
bool kill_upword_syntactic_equality() {
  const UpWord u(Word{0}, Word{1, 0});
  const UpWord v(Word{0, 1}, Word{0, 1});
  const bool mutant_equal = false;  // raw pairs ({0},{1,0}) vs ({0,1},{0,1})
  return (u == v) && !mutant_equal;
}

// The memo cache's content address must cover the full structure; keying on
// num_states alone collides automata with different languages, which a
// cache hit would then silently swap.
bool kill_cache_coarse_key() {
  const Nba universal = trivial_nba(true), empty = trivial_nba(false);
  const auto coarse_key = [](const Nba& nba) {
    return core::DigestBuilder().add_int(nba.num_states()).digest();
  };
  return coarse_key(universal) == coarse_key(empty) &&
         !(buchi::fingerprint(universal) == buchi::fingerprint(empty)) &&
         !buchi::is_equivalent(universal, empty);
}

// ---------------------------------------------------------------------------
// Monitor fleet (PR8)
// ---------------------------------------------------------------------------

// The sink row of a fleet program self-loops so a violation latches. A table
// whose sink row escapes back to a live state (here: sink --a--> live) walked
// without the early-out "un-violates" a session — Schneider's monitors must
// never do that, and MonitorFleet rejects such tables at load time.
bool kill_fleet_dropped_sink_latch() {
  // "G a" as a 2-state program: live state 0 (a stays, b sinks), sink 1.
  MonitorFleet fleet;
  const monitor::MonitorId m = fleet.add_program(2, 2, 0, 1, {0, 1, 1, 1});
  const monitor::SessionId session = fleet.open_session(m);
  // Mutant: sink row's a-cell escapes to state 0, and the walk has no
  // at-sink early-out — exactly the defect the load-time validation guards.
  const std::uint32_t mutant_table[4] = {0, 1, 0, 1};
  std::uint32_t mutant_state = 0;
  const words::Word trace = {0, 1, 0};  // a, b, a
  for (const words::Sym sym : trace) {
    const bool correct = fleet.step(session, sym);
    mutant_state = mutant_table[mutant_state * 2 + static_cast<std::uint32_t>(sym)];
    const bool mutated = mutant_state != 1;
    if (mutated != correct) return true;  // the escaped sink un-latches on 'a'
  }
  return false;
}

// Fleet transition tables are row-major [state × |Σ|]; a walker that reads
// table[sym · num_states + state] transposes the table, which is only
// invisible on square symmetric programs. A rectangular (3-state, 2-symbol)
// monitor exposes the swap on its first b.
bool kill_fleet_swapped_stride() {
  // "No bb": 0 = no pending b, 1 = one b seen, 2 = sink.
  MonitorFleet fleet;
  const monitor::MonitorId m = fleet.add_program(2, 3, 0, 2, {0, 1, 0, 2, 2, 2});
  const monitor::SessionId session = fleet.open_session(m);
  const std::uint32_t table[6] = {0, 1, 0, 2, 2, 2};
  std::uint32_t mutant_state = 0;
  const words::Word trace = {1, 0, 1, 1};  // b, a, b, b: rejected at the last b
  for (const words::Sym sym : trace) {
    const bool correct = fleet.step(session, sym);
    if (mutant_state != 2) {  // keep the latch; corrupt only the stride
      mutant_state = table[static_cast<std::uint32_t>(sym) * 3 + mutant_state];
    }
    const bool mutated = mutant_state != 2;
    if (mutated != correct) return true;  // transposed read sinks on the first b
  }
  return false;
}

// ---------------------------------------------------------------------------
// Quantitative pipeline (PR10)
// ---------------------------------------------------------------------------

// Sup and Inf are lattice duals; a fold that takes the minimum where the
// supremum is required is invisible on constant weight sequences, so the
// witness lasso mixes 0 and 1.
bool kill_fold_swapped_sup_inf() {
  const quant::WeightLasso lasso{{}, {0.0, 1.0}};
  double mutant = lasso.period[0];
  for (const double w : lasso.period) mutant = std::min(mutant, w);  // Inf fold
  const double correct = quant::fold_value(quant::ValueFn::kSup, 0.5, lasso);
  return mutant != correct;
}

// The discounted sum weights position i by λ^i (the FIRST letter counts
// undiscounted); an off-by-one λ^(i+1) scaling shrinks every value by λ.
// Weight 1 followed by 0^ω separates the two: correct 1, mutant λ.
bool kill_disc_off_by_one() {
  const std::vector<double> stem = {1.0};
  const std::vector<double> cycle = {0.0};
  const double discount = 0.5;
  double mutant = 0.0;
  double factor = discount;  // BUG: starts at λ^1 instead of λ^0
  for (const double w : stem) {
    mutant += factor * w;
    factor *= discount;
  }
  // cycle contributes 0 either way
  const double correct = quant::discounted_lasso_value(stem, cycle, discount);
  return mutant != correct;
}

// Φ* is the infimum of prefix_sup over ALL finite prefixes; a closure that
// stops the descent at the word's stem misses the rounds where the period
// kills the last runs. Automaton: Φ(w) = 1 iff w = a^ω (Sup over a-loop of
// weight 1, no b-edges). On a·b^ω, prefix_sup(a) = 1 but prefix_sup(ab) = 0.
bool kill_closure_skip_last_round() {
  quant::WeightedNba aut(Alphabet::binary(), 2, 0, quant::ValueFn::kSup);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 1, 1.0);
  aut.add_transition(1, 0, 1, 1.0);
  const UpWord w = w_ab_omega();  // a b^ω
  // BUG: infimum only over the prefixes of the stem (here ε and "a").
  double mutant = quant::prefix_sup(aut, {});
  mutant = std::min(mutant, quant::prefix_sup(aut, {0}));
  const double correct = quant::closure_value(aut, w);  // descends into b's
  return mutant != correct;
}

// Theorem 10's live part is ⊤ wherever Φ is already safe; returning Φ
// itself still satisfies the min identity but yields a part that is NOT
// live — at a word with Φ*(w) = Φ(w) < ⊤ the liveness certificate
// (live < ⊤ ⟹ Φ* > Φ) fails. Witness: the constant-½ Sup property.
bool kill_decompose_live_is_property() {
  quant::WeightedNba aut(Alphabet::binary(), 1, 0, quant::ValueFn::kSup);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 0, 0.5);
  aut.add_transition(0, 1, 0, 0.5);
  const quant::QuantDecomposition d = quant::decompose_at(aut, w_a_omega());
  const double mutant_live = d.property;  // BUG: live part := Φ
  const auto certificate_fails = [&](double live) {
    return live < aut.top_value() && !(d.safety > d.property);
  };
  return certificate_fails(mutant_live) != certificate_fails(d.live);
}

// LimAvg is prefix-independent — the stem must not contribute to the mean.
// Stem weight 1 with period weight 0 separates: correct 0, mutant ½.
bool kill_limavg_stem_included() {
  const quant::WeightLasso lasso{{1.0}, {0.0}};
  double sum = 0.0;
  for (const double w : lasso.prefix) sum += w;  // BUG: stem included
  for (const double w : lasso.period) sum += w;
  const double mutant =
      sum / static_cast<double>(lasso.prefix.size() + lasso.period.size());
  const double correct = quant::fold_value(quant::ValueFn::kLimAvg, 0.5, lasso);
  return mutant != correct;
}

}  // namespace

const std::vector<Mutant>& mutants() {
  static const std::vector<Mutant> bank = {
      // Büchi pipeline
      {"buchi.lcl.skip_make_accepting", "buchi",
       "lcl's accept-everything step (§2.4 limit closure)", kill_lcl_skip_make_accepting},
      {"buchi.lcl.skip_prune", "buchi",
       "lcl's dead-end pruning (prefixes must extend into L)", kill_lcl_skip_prune},
      {"buchi.lcl.identity_operator", "buchi",
       "Theorem 2: lcl's image is the safety sublattice", kill_lcl_identity_operator},
      {"buchi.decompose.liveness_not_live", "buchi",
       "Theorem 2: the liveness component must be live", kill_decompose_liveness_not_live},
      {"buchi.decompose.wrong_meet", "buchi",
       "Theorem 2: L = L(B_S) ∩ L(B_L) exactly", kill_decompose_wrong_meet},
      {"buchi.intersect.no_counter", "buchi",
       "the 2-phase counter of the Büchi product", kill_intersect_no_counter},
      {"buchi.complement.via_closure", "buchi",
       "complementation of L itself, not of lcl(L)", kill_complement_via_closure},
      {"buchi.inclusion.sampled_only", "buchi",
       "PR4's exact antichain search vs corpus sampling", kill_inclusion_sampled_only},
      {"buchi.emptiness.reachability_only", "buchi",
       "Büchi emptiness = accepting lasso, not reachability",
       kill_emptiness_reachability_only},
      {"buchi.simulation.ignore_acceptance", "buchi",
       "the acceptance condition of direct simulation", kill_simulation_ignore_acceptance},
      {"buchi.safety.inadequate_corpus", "buchi",
       "§2.3 sampled classification is refutation-only", kill_safety_inadequate_corpus},
      {"buchi.csr.offset_row_shift", "buchi",
       "PR6 CSR layout: the [state × symbol] offset-row indexing",
       kill_csr_offset_row_shift},
      {"buchi.csr.unsorted_slice", "buchi",
       "PR6 CSR layout: first-insertion slice order is structural content",
       kill_csr_unsorted_slice},
      // Symbolic cube backend
      {"words.cube.flipped_polarity", "words",
       "PR9 cube semantics: must_true vs must_false polarity",
       kill_cube_flipped_polarity},
      {"words.cube.dropped_dedup", "words",
       "PR9 hash-consing: structural equality ⇔ id equality",
       kill_cube_dropped_dedup},
      // LTL pipeline
      {"ltl.translate.until_as_weak", "ltl",
       "the Until eventuality obligation in the tableau", kill_translate_until_as_weak},
      {"ltl.translate.next_as_identity", "ltl", "X's one-step shift",
       kill_translate_next_as_identity},
      {"ltl.nnf.negated_until_as_until", "ltl", "the NNF duality ¬(φUψ) = ¬φR¬ψ",
       kill_nnf_negated_until_as_until},
      {"ltl.syntactic.until_allowed", "ltl",
       "Sistla's Until-free safety fragment (§1)", kill_syntactic_until_allowed},
      {"ltl.eval.gf_as_reachability", "ltl",
       "§2.3: GF is recurrence, not reachability", kill_eval_gf_as_reachability},
      // Lattice pipeline
      {"lattice.closure.non_monotone", "lattice", "the monotonicity closure law (§3)",
       kill_closure_non_monotone},
      {"lattice.closure.not_idempotent", "lattice", "the idempotence closure law (§3)",
       kill_closure_not_idempotent},
      {"lattice.theorem3.without_modularity", "lattice",
       "Theorem 3's modularity hypothesis (Lemma 6 / Figure 1)",
       kill_theorem3_without_modularity},
      {"lattice.paper_setting.skip_modularity", "lattice",
       "the is_paper_setting modularity check", kill_paper_setting_skip_modularity},
      {"lattice.decomposition.swapped_parts", "lattice",
       "which component of Theorem 2's pair is the safety one",
       kill_decomposition_swapped_parts},
      // Rabin / CTL pipeline
      {"rabin.rfcl.skip_prune", "rabin", "rfcl's empty-state pruning (§4.4)",
       kill_rfcl_skip_prune},
      {"rabin.rfcl.keep_acceptance", "rabin",
       "rfcl's acceptance trivialization (§4.4)", kill_rfcl_keep_acceptance},
      {"rabin.emptiness.ignore_red", "rabin", "the red half of the Rabin condition",
       kill_emptiness_ignore_red},
      {"ctl.translate.wrong_quantifier", "ctl", "§4.3's E vs A path quantifiers",
       kill_ctl_wrong_quantifier},
      {"ctl.translate.eu_as_ef", "ctl", "the φ-obligation of E[φ U ψ] (§4.3)",
       kill_ctl_eu_as_ef},
      // Words / core
      {"words.upword.syntactic_equality", "words",
       "§2.1: UP-words denote ω-words, not (prefix, period) pairs",
       kill_upword_syntactic_equality},
      {"core.cache.coarse_key", "core",
       "PR3's full-structure content address", kill_cache_coarse_key},
      // Monitor fleet
      {"monitor.fleet.dropped_sink_latch", "monitor",
       "PR8's latching sink row (violations are permanent)",
       kill_fleet_dropped_sink_latch},
      {"monitor.fleet.swapped_stride", "monitor",
       "PR8's row-major [state × |Σ|] transition stride",
       kill_fleet_swapped_stride},
      // Quantitative pipeline
      {"quant.fold.swapped_sup_inf", "quant",
       "the Sup value function (its Inf dual is wrong on mixed lassos)",
       kill_fold_swapped_sup_inf},
      {"quant.disc.off_by_one", "quant",
       "DiscSum's λ^i position weighting (first letter undiscounted)",
       kill_disc_off_by_one},
      {"quant.closure.skip_last_round", "quant",
       "Φ*'s infimum over ALL prefixes, past the word's stem",
       kill_closure_skip_last_round},
      {"quant.decompose.live_is_property", "quant",
       "Theorem 10's ⊤-where-safe live part (the liveness certificate)",
       kill_decompose_live_is_property},
      {"quant.limavg.stem_included", "quant",
       "LimAvg's prefix independence", kill_limavg_stem_included},
  };
  return bank;
}

}  // namespace slat::qc
